//! Engine stress tests: multiple simulations coexisting in one process.
//!
//! The engine parks/unparks OS threads and keeps per-simulation state in
//! `Arc`s; nothing may leak across engine instances. These tests run whole
//! simulations concurrently from scoped OS threads and check that each
//! remains bit-deterministic.

use nmp_sim::{Config, Machine, ThreadKind};

/// One self-contained simulation: concurrent counter increments via CAS.
/// Returns (makespan, final counter, dram reads).
fn run_world(seed: u64) -> (u64, u64, u64) {
    let machine = Machine::new(Config::tiny());
    let base = machine.host_arena().alloc(8);
    let mut sim = machine.simulation();
    for core in 0..4usize {
        let b = base;
        sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| {
            let mut bumps = 0;
            while bumps < 25 {
                let cur = ctx.read_u64(b);
                ctx.advance(seed % 7 + core as u64); // skew interleavings per seed
                if ctx.cas_u64(b, cur, cur + 1).is_ok() {
                    bumps += 1;
                }
            }
        });
    }
    let out = sim.run();
    (out.makespan(), machine.ram().read_u64(base), machine.mem().snapshot().dram_reads())
}

#[test]
fn concurrent_simulations_do_not_interfere() {
    // Run 4 distinct worlds in parallel OS threads, twice; every world must
    // reproduce its own fingerprint exactly.
    let fingerprints: Vec<(u64, u64, u64)> = (0..4).map(run_world).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4u64)
            .map(|s| {
                let expect = fingerprints[s as usize];
                scope.spawn(move || {
                    for _ in 0..2 {
                        assert_eq!(run_world(s), expect, "world {s} diverged");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
}

#[test]
fn cas_counter_reaches_expected_total() {
    let (_, total, _) = run_world(1);
    assert_eq!(total, 100, "4 threads x 25 successful CAS increments");
}

#[test]
fn many_sequential_simulations_are_stable() {
    let first = run_world(9);
    for _ in 0..10 {
        assert_eq!(run_world(9), first);
    }
}

#[test]
fn large_thread_count_simulation() {
    // 8 hosts + 8 NMP daemons on the paper config: engine handles 16
    // logical threads with daemons exiting on stop.
    let machine = Machine::new(Config::paper());
    let base = machine.host_arena().alloc(64);
    let mut sim = machine.simulation();
    for part in 0..machine.partitions() {
        sim.spawn_daemon(format!("nmp{part}"), ThreadKind::Nmp { part }, move |ctx| {
            while !ctx.stop_requested() {
                ctx.idle(64);
            }
        });
    }
    for core in 0..machine.config().host_cores {
        let b = base + core as u32 * 8;
        sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| {
            for i in 0..200u64 {
                ctx.write_u64(b, i);
            }
        });
    }
    let out = sim.run();
    assert!(out.makespan() > 0);
    for core in 0..machine.config().host_cores {
        assert_eq!(machine.ram().read_u64(base + core as u32 * 8), 199);
    }
}
