//! Fixture programs for the engine-integrated correctness checkers.
//!
//! Positive fixtures (clean programs) must produce a clean report; negative
//! fixtures (a seeded racy program, a host thread touching an NMP
//! partition) must be flagged. These guard the analysis layer itself: a
//! detector that never fires would pass every structure test.
#![cfg(feature = "analysis")]

use std::sync::Arc;

use nmp_sim::analysis::{PolicyRule, RaceKind};
use nmp_sim::{Config, Machine, ThreadKind};

/// Two host threads hammer the same word with plain (unannotated) writes:
/// textbook write-write race.
#[test]
fn racy_program_is_flagged() {
    let machine = Machine::new(Config::tiny());
    let analysis = machine.attach_analysis();
    let addr = machine.host_arena().alloc(8);
    let mut sim = machine.simulation();
    for core in 0..2usize {
        sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| {
            for i in 0..4u64 {
                ctx.write_u64(addr, i);
            }
        });
    }
    sim.run();

    let report = analysis.report();
    assert!(report.races_total >= 1, "expected at least one race, got none");
    assert!(!report.is_clean());
    let r = &report.races[0];
    assert_eq!(r.addr & !3, addr & !3);
    assert_eq!(r.kind, RaceKind::WriteWrite);
    assert_ne!(r.first.thread, r.second.thread);
    // Both access sites must point into this file.
    assert!(r.first.file.ends_with("analysis_fixtures.rs"), "site file: {}", r.first.file);
    assert!(r.second.file.ends_with("analysis_fixtures.rs"));
}

/// Same program, but the shared word is only ever touched through CAS:
/// every access is a synchronization operation, so no races.
#[test]
fn cas_only_program_is_clean() {
    let machine = Machine::new(Config::tiny());
    let analysis = machine.attach_analysis();
    let addr = machine.host_arena().alloc(8);
    let mut sim = machine.simulation();
    for core in 0..2usize {
        sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| {
            let mut bumps = 0;
            while bumps < 8 {
                let cur = ctx.read_u64(addr);
                if ctx.cas_u64(addr, cur, cur + 1).is_ok() {
                    bumps += 1;
                }
            }
        });
    }
    sim.run();
    analysis.report().assert_clean();
    assert_eq!(machine.ram().read_u64(addr), 16);
}

/// Message passing through an acquire/release flag: the data word is
/// written plain by the producer and read plain by the consumer, but the
/// release-store / acquire-load on the flag orders them.
#[test]
fn release_acquire_handoff_is_clean() {
    let machine = Machine::new(Config::tiny());
    let analysis = machine.attach_analysis();
    let data = machine.host_arena().alloc(8);
    let flag = machine.host_arena().alloc(8);
    let mut sim = machine.simulation();
    sim.spawn("producer", ThreadKind::Host { core: 0 }, move |ctx| {
        ctx.write_u64(data, 99);
        ctx.write_u64_release(flag, 1);
    });
    sim.spawn("consumer", ThreadKind::Host { core: 1 }, move |ctx| {
        while ctx.read_u64_acquire(flag) == 0 {
            ctx.idle(8);
        }
        assert_eq!(ctx.read_u64(data), 99);
    });
    sim.run();
    analysis.report().assert_clean();
}

/// The same handoff with a *plain* flag write is a race on the data word
/// (and the flag): the detector must not treat plain accesses as ordering.
#[test]
fn plain_flag_handoff_races() {
    let machine = Machine::new(Config::tiny());
    let analysis = machine.attach_analysis();
    let data = machine.host_arena().alloc(8);
    let flag = machine.host_arena().alloc(8);
    let mut sim = machine.simulation();
    sim.spawn("producer", ThreadKind::Host { core: 0 }, move |ctx| {
        ctx.write_u64(data, 99);
        ctx.write_u64(flag, 1); // plain: establishes no happens-before
    });
    sim.spawn("consumer", ThreadKind::Host { core: 1 }, move |ctx| {
        while ctx.read_u64(flag) == 0 {
            ctx.idle(8);
        }
        let _ = ctx.read_u64(data);
    });
    sim.run();
    assert!(analysis.race_count() >= 1);
}

/// Speculative reads never race: validated-later read patterns (seqlock
/// bodies, optimistic traversals) are exempt by construction.
#[test]
fn speculative_reads_do_not_race() {
    let machine = Machine::new(Config::tiny());
    let analysis = machine.attach_analysis();
    let addr = machine.host_arena().alloc(8);
    let mut sim = machine.simulation();
    sim.spawn("writer", ThreadKind::Host { core: 0 }, move |ctx| {
        for i in 0..4u64 {
            ctx.write_u64(addr, i);
        }
    });
    sim.spawn("reader", ThreadKind::Host { core: 1 }, move |ctx| {
        for _ in 0..4 {
            let _ = ctx.read_u64_speculative(addr);
        }
    });
    sim.run();
    analysis.report().assert_clean();
}

/// Freeing a block resets detector state: a new owner's unsynchronized
/// accesses must not be raced against the old owner's.
#[test]
fn arena_free_resets_race_state() {
    let machine = Machine::new(Config::tiny());
    let analysis = machine.attach_analysis();
    let addr = machine.host_arena().alloc(16);
    let mut sim = machine.simulation();
    sim.spawn("old-owner", ThreadKind::Host { core: 0 }, move |ctx| {
        ctx.write_u64(addr, 7);
    });
    sim.run();
    machine.host_arena().free(addr, 16, 8);
    let addr2 = machine.host_arena().alloc(16);
    assert_eq!(addr, addr2, "freelist should hand the block back");
    let mut sim = machine.simulation();
    sim.spawn("new-owner", ThreadKind::Host { core: 1 }, move |ctx| {
        ctx.write_u64(addr2, 8); // unordered wrt old owner — but block was freed
    });
    sim.run();
    analysis.report().assert_clean();
}

/// Sequential simulations over one machine are ordered by `on_sim_start`,
/// so cross-simulation accesses to the same word never race.
#[test]
fn sequential_simulations_do_not_race() {
    let machine = Machine::new(Config::tiny());
    let analysis = machine.attach_analysis();
    let addr = machine.host_arena().alloc(8);
    for round in 0..3u64 {
        let mut sim = machine.simulation();
        sim.spawn("t", ThreadKind::Host { core: (round % 2) as usize }, move |ctx| {
            let v = ctx.read_u64(addr);
            ctx.write_u64(addr, v + 1);
        });
        sim.run();
    }
    analysis.report().assert_clean();
}

/// With analysis attached, a host thread touching an NMP partition is
/// recorded as a policy violation instead of panicking the simulation.
#[test]
fn host_touching_partition_is_recorded_not_fatal() {
    let machine = Machine::new(Config::tiny());
    let analysis = machine.attach_analysis();
    let part_addr = machine.part_arena(0).alloc(8);
    let mut sim = machine.simulation();
    sim.spawn("rogue-host", ThreadKind::Host { core: 0 }, move |ctx| {
        ctx.write_u64(part_addr, 1);
        let _ = ctx.read_u64(part_addr);
    });
    sim.run(); // must not panic

    let report = analysis.report();
    assert!(report.policy_total >= 1);
    let v = &report.policy_violations[0];
    assert_eq!(v.rule, PolicyRule::HostTouchedPartition);
    assert_eq!(v.thread, "rogue-host");
    assert!(v.file.ends_with("analysis_fixtures.rs"));
}

/// Without analysis attached the original fail-fast panic is preserved.
#[test]
#[should_panic(expected = "accessed NMP partition")]
fn host_touching_partition_panics_when_unattached() {
    let machine = Machine::new(Config::tiny());
    let part_addr = machine.part_arena(0).alloc(8);
    let mut sim = machine.simulation();
    sim.spawn("rogue-host", ThreadKind::Host { core: 0 }, move |ctx| {
        ctx.write_u64(part_addr, 1);
    });
    sim.run();
}

/// NMP core touching a foreign partition is a distinct rule.
#[test]
fn nmp_touching_foreign_partition_is_recorded() {
    let machine = Machine::new(Config::tiny());
    let analysis = machine.attach_analysis();
    let foreign = machine.part_arena(1).alloc(8);
    let mut sim = machine.simulation();
    sim.spawn("nmp-0", ThreadKind::Nmp { part: 0 }, move |ctx| {
        let _ = ctx.read_u64(foreign);
    });
    sim.run();
    let report = analysis.report();
    assert_eq!(report.policy_violations[0].rule, PolicyRule::NmpTouchedForeign);
}

/// Host direct (non-MMIO) scratchpad access is its own rule.
#[test]
fn host_direct_scratchpad_is_recorded() {
    let machine = Machine::new(Config::tiny());
    let analysis = machine.attach_analysis();
    let spad = machine.map().spad_base(0);
    let mut sim = machine.simulation();
    sim.spawn("h0", ThreadKind::Host { core: 0 }, move |ctx| {
        let _ = ctx.read_u64(spad);
    });
    sim.run();
    let report = analysis.report();
    assert_eq!(report.policy_violations[0].rule, PolicyRule::HostDirectScratchpad);
}

/// Analysis counters surface through the memory-system stats snapshot.
#[test]
fn snapshot_counters_reflect_analysis() {
    let machine = Machine::new(Config::tiny());
    let _analysis = machine.attach_analysis();
    let addr = machine.host_arena().alloc(8);
    let part_addr = machine.part_arena(0).alloc(8);
    let mut sim = machine.simulation();
    for core in 0..2usize {
        sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| {
            ctx.write_u64(addr, core as u64);
            if core == 0 {
                ctx.write_u64(part_addr, 1);
            }
        });
    }
    sim.run();
    let snap = machine.mem().snapshot();
    assert!(snap.races_detected >= 1);
    assert!(snap.policy_violations >= 1);
}

/// Attach is idempotent and shared across handles.
#[test]
fn attach_is_idempotent() {
    let machine = Machine::new(Config::tiny());
    let a = machine.attach_analysis();
    let b = machine.attach_analysis();
    assert!(Arc::ptr_eq(&a, &b));
}

// ---------------------------------------------------------------------------
// Effect-spec fixtures: mis-declared plans are rejected by the static
// verifier with ZERO simulation cycles (note no `Machine` or `Simulation`
// is ever constructed below — `verify_spec` is pure plan inspection), and
// a mis-behaving executor is caught by conformance mode through the real
// engine.
// ---------------------------------------------------------------------------

mod spec_fixtures {
    use nmp_sim::analysis::{verify_spec, verify_specs, RegionClass, ThreadClass};
    use nmp_sim::{AccessDecl, EffectSpec, OpSpec, SpecError, Topology};

    const TOPO: Topology = Topology { parts: 4, host_cores: 4 };

    fn errs(spec: EffectSpec) -> Vec<SpecError> {
        verify_spec(&spec, TOPO)
    }

    #[test]
    fn empty_spec_is_rejected() {
        assert_eq!(errs(EffectSpec::new("empty")), [SpecError::EmptySpec { structure: "empty" }]);
    }

    #[test]
    fn duplicate_op_code_is_rejected() {
        let spec = EffectSpec::new("dup")
            .op(OpSpec::new(0, "Read").nmp(AccessDecl::read(RegionClass::Part)))
            .op(OpSpec::new(0, "AlsoRead").nmp(AccessDecl::read(RegionClass::Part)));
        assert!(errs(spec).iter().any(|e| matches!(e, SpecError::DuplicateOp { code: 0, .. })));
    }

    #[test]
    fn host_declaring_partition_access_is_rejected() {
        let spec = EffectSpec::new("greedy-host")
            .op(OpSpec::new(0, "Read").host(AccessDecl::read(RegionClass::Part)));
        assert!(errs(spec).iter().any(|e| matches!(e, SpecError::HostPartAccess { .. })));
    }

    #[test]
    fn foreign_region_declaration_is_rejected() {
        let spec = EffectSpec::new("tourist")
            .op(OpSpec::new(0, "Read").nmp(AccessDecl::read(RegionClass::Foreign)));
        assert!(errs(spec)
            .iter()
            .any(|e| matches!(e, SpecError::ForeignAccess { class: ThreadClass::Nmp, .. })));
    }

    #[test]
    fn wrong_channel_is_rejected_both_ways() {
        // Host→scratchpad without MMIO…
        let spec = EffectSpec::new("no-mmio")
            .op(OpSpec::new(0, "Read").host(AccessDecl::read(RegionClass::Spad)));
        assert!(errs(spec).iter().any(|e| matches!(e, SpecError::ChannelMismatch { .. })));
        // …and MMIO into a partition from the NMP side.
        let spec = EffectSpec::new("mmio-part")
            .op(OpSpec::new(0, "Read").nmp(AccessDecl::read(RegionClass::Part).mmio()));
        assert!(errs(spec).iter().any(|e| matches!(e, SpecError::ChannelMismatch { .. })));
    }

    #[test]
    fn unpaired_release_and_acquire_are_rejected() {
        let spec = EffectSpec::new("shout") // release nobody acquires
            .op(OpSpec::new(0, "Update").host(AccessDecl::write(RegionClass::Host).release()));
        assert!(errs(spec).iter().any(|e| matches!(e, SpecError::UnpairedRelease { .. })));
        let spec = EffectSpec::new("listen") // acquire nobody releases
            .op(OpSpec::new(0, "Read").host(AccessDecl::read(RegionClass::Host).acquire()));
        assert!(errs(spec).iter().any(|e| matches!(e, SpecError::UnpairedAcquire { .. })));
    }

    #[test]
    fn partition_work_needs_partitions() {
        let spec = EffectSpec::new("nmp-only")
            .op(OpSpec::new(0, "Read").nmp(AccessDecl::read(RegionClass::Part)));
        let no_parts = Topology { parts: 0, host_cores: 4 };
        assert!(verify_spec(&spec, no_parts)
            .iter()
            .any(|e| matches!(e, SpecError::NoPartitions { .. })));
        // The same spec is fine on a machine that has partitions.
        assert!(verify_spec(&spec, TOPO).is_empty());
    }

    #[test]
    fn verify_specs_aggregates_across_structures() {
        let good = EffectSpec::new("good")
            .op(OpSpec::new(0, "Read").nmp(AccessDecl::read(RegionClass::Part)));
        let bad = EffectSpec::new("bad");
        let errs = verify_specs(&[&good, &bad], TOPO);
        assert_eq!(errs, [SpecError::EmptySpec { structure: "bad" }]);
    }
}

/// A mis-behaving executor — one that writes where its spec only declares
/// reads — is caught by conformance mode through the real engine, with the
/// op scope named in the blame report.
#[test]
fn conformance_catches_misbehaving_exec() {
    use nmp_sim::analysis::RegionClass;
    use nmp_sim::{AccessDecl, EffectSpec, OpSpec};

    let machine = Machine::new(Config::tiny());
    let analysis = machine.attach_analysis();
    analysis.install_spec(
        EffectSpec::new("read-only-fixture")
            .op(OpSpec::new(0, "Read").nmp(AccessDecl::read(RegionClass::Part))),
    );
    analysis.enable_conformance();

    let addr = machine.part_arena(0).alloc(8);
    let a = Arc::clone(&analysis);
    let mut sim = machine.simulation();
    sim.spawn("nmp-0", ThreadKind::Nmp { part: 0 }, move |ctx| {
        a.set_current_op(ctx.id(), Some(0));
        let _ = ctx.read_u64(addr); // declared: fine
        ctx.write_u64(addr, 1); // NOT declared: must be blamed
        a.set_current_op(ctx.id(), None);
    });
    sim.run();

    let report = analysis.report();
    assert_eq!(report.conformance_total, 1, "exactly the write should be blamed");
    let v = &report.conformance[0];
    assert_eq!(v.op, Some((0, "Read")));
    assert_eq!(v.consulted, ["read-only-fixture"]);
    assert!(v.observed.to_string().contains("write"), "observed: {}", v.observed);
    assert!(v.file.ends_with("analysis_fixtures.rs"));
    assert!(!report.is_clean());
}

/// The same program is NOT blamed while conformance mode stays disabled:
/// installed specs are inert until opted in.
#[test]
fn conformance_is_opt_in() {
    use nmp_sim::analysis::RegionClass;
    use nmp_sim::{AccessDecl, EffectSpec, OpSpec};

    let machine = Machine::new(Config::tiny());
    let analysis = machine.attach_analysis();
    analysis.install_spec(
        EffectSpec::new("read-only-fixture")
            .op(OpSpec::new(0, "Read").nmp(AccessDecl::read(RegionClass::Part))),
    );

    let addr = machine.part_arena(0).alloc(8);
    let a = Arc::clone(&analysis);
    let mut sim = machine.simulation();
    sim.spawn("nmp-0", ThreadKind::Nmp { part: 0 }, move |ctx| {
        a.set_current_op(ctx.id(), Some(0));
        ctx.write_u64(addr, 1);
        a.set_current_op(ctx.id(), None);
    });
    sim.run();
    assert_eq!(analysis.conformance_count(), 0);
    analysis.report().assert_clean();
}
