//! Byte-identity of the sharded engine against the legacy sequential engine.
//!
//! The sharded scheduler (one event loop per vault shard plus a host shard,
//! conservative frontier gating, deferred trace/analysis replay) must be an
//! *indistinguishable* drop-in: under a fixed seed every observable artifact
//! — per-thread final clocks, final RAM contents, the stats snapshot, the
//! Chrome-trace export, the trace summary, and the analysis report — must be
//! byte-for-byte identical to a `shards = 1` (legacy single-loop) run.
//!
//! The workload here is deliberately adversarial for a conservative
//! scheduler: host threads CAS-contend on shared DRAM, post MMIO work to
//! both partitions' scratchpads (crossing the host-shard/vault-shard
//! boundary in both directions), and NMP daemons mutate their own partition
//! heaps while polling their mailboxes. Everything stays policy-clean: a
//! policy violation opens all gates (fail-fast ordering is preserved but
//! not byte-reproduced; see DESIGN.md §4.9).

#![cfg(all(feature = "trace", feature = "analysis"))]

use std::sync::Arc;

use nmp_sim::{Config, Machine, ThreadKind};

/// Run the handshake workload on `shards` vault shards and fold every
/// observable artifact into one big string fingerprint.
fn fingerprint(shards: usize) -> String {
    let machine = Machine::new(Config::tiny().with_shards(shards));
    let tracer = machine.attach_tracer();
    let analysis = machine.attach_analysis();

    let parts = machine.partitions();
    let counter = machine.host_arena().alloc(8);
    let results = machine.host_arena().alloc(8 * parts as u32);
    let heap: Vec<_> = (0..parts).map(|p| machine.part_arena(p).alloc(64)).collect();

    let mut sim = machine.simulation();

    // NMP daemons: poll mailbox word 0, accumulate into own partition heap,
    // publish the running sum at word 8, ack by clearing the mailbox.
    for (p, &h) in heap.iter().enumerate() {
        let spad = machine.map().spad_base(p);
        sim.spawn_daemon(format!("nmp{p}"), ThreadKind::Nmp { part: p }, move |ctx| {
            let mut sum = 0u64;
            while !ctx.stop_requested() {
                let v = ctx.read_u64_acquire(spad);
                if v != 0 {
                    sum = sum.wrapping_add(v);
                    ctx.write_u64(h, sum);
                    ctx.write_u64(spad + 8, sum);
                    ctx.write_u64_release(spad, 0);
                } else {
                    ctx.idle(24);
                }
            }
        });
    }

    // Host threads: CAS-bump a shared counter, then round-robin MMIO posts
    // to every partition, waiting for each ack before the next post.
    for core in 0..3usize {
        let m = Arc::clone(&machine);
        let out = results;
        sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| {
            let mut last = 0u64;
            for i in 0..12u64 {
                loop {
                    let cur = ctx.read_u64(counter);
                    ctx.advance(1 + (core as u64 + i) % 5);
                    if ctx.cas_u64(counter, cur, cur + 1).is_ok() {
                        break;
                    }
                }
                let p = (core + i as usize) % m.partitions();
                let spad = m.map().spad_base(p);
                // Wait for the mailbox to be free, then post.
                while ctx.mmio_read_u64_acquire(spad) != 0 {
                    ctx.idle(32);
                }
                ctx.mmio_write_u64_release(spad, 1 + core as u64 * 100 + i);
                // Wait for the daemon's published sum to change.
                loop {
                    let s = ctx.mmio_read_u64_acquire(spad + 8);
                    if s != last && s != 0 {
                        last = s;
                        break;
                    }
                    ctx.idle(32);
                }
            }
            ctx.write_u64(out + core as u32 * 8, last);
        });
    }

    let outcome = sim.run();

    let mut fp = String::new();
    fp.push_str(&format!("clocks={:?}\n", outcome.clocks));
    fp.push_str(&format!("names={:?}\n", outcome.names));
    fp.push_str(&format!("makespan={}\n", outcome.makespan()));
    fp.push_str(&format!("counter={}\n", machine.ram().read_u64(counter)));
    for core in 0..3u32 {
        fp.push_str(&format!("r{core}={}\n", machine.ram().read_u64(results + core * 8)));
    }
    for (p, h) in heap.iter().enumerate() {
        fp.push_str(&format!("heap{p}={}\n", machine.ram().read_u64(*h)));
    }
    fp.push_str(&format!("snapshot={:?}\n", machine.mem().snapshot()));
    fp.push_str(&format!("summary={:?}\n", tracer.summary()));
    fp.push_str(&format!("events={:?}\n", tracer.events()));
    fp.push_str(&format!("phases={:?}\n", tracer.phase_totals()));
    fp.push_str(&format!("report={:?}\n", analysis.report()));
    fp.push_str(&nmp_sim::trace::TraceSink::chrome_json(&tracer));
    fp
}

/// shards=2 (one event loop per vault of `Config::tiny`) reproduces the
/// legacy engine byte-for-byte, including trace export and analysis report.
#[test]
fn sharded_matches_legacy_byte_for_byte() {
    let legacy = fingerprint(1);
    let sharded = fingerprint(2);
    assert_eq!(legacy, sharded, "shards=2 diverged from the sequential engine");
}

/// Oversubscribed shard counts are clamped to the partition count and stay
/// identical too.
#[test]
fn oversubscribed_shards_clamp_and_match() {
    assert_eq!(fingerprint(1), fingerprint(8));
}

/// The sharded engine is deterministic run-to-run on its own (same OS-level
/// thread interleavings are *not* required for this — only frontier order).
#[test]
fn sharded_engine_is_self_deterministic() {
    let a = fingerprint(2);
    for _ in 0..3 {
        assert_eq!(a, fingerprint(2));
    }
}

/// Adaptive-back-off variant of the handshake workload: every idle
/// duration is a pure function of *observed simulated state* — daemons
/// double their poll interval on each empty mailbox check and re-arm it on
/// work (the combiner-control pattern of the hybrids offload policy), and
/// host threads double their ack-wait interval per empty poll (the lane
/// governor's stall back-off pattern). Because the intervals derive only
/// from values the threads read out of simulated memory, the conservative
/// sharded scheduler must reproduce them bit-for-bit.
fn fingerprint_adaptive_backoff(shards: usize) -> String {
    let machine = Machine::new(Config::tiny().with_shards(shards));
    let tracer = machine.attach_tracer();
    let analysis = machine.attach_analysis();

    let parts = machine.partitions();
    let results = machine.host_arena().alloc(8 * parts as u32);
    let heap: Vec<_> = (0..parts).map(|p| machine.part_arena(p).alloc(64)).collect();

    let mut sim = machine.simulation();

    // Daemons: exponential poll back-off (8, 16, ... 128) while the
    // mailbox is empty, re-armed to 8 by every served request.
    for (p, &h) in heap.iter().enumerate() {
        let spad = machine.map().spad_base(p);
        sim.spawn_daemon(format!("nmp{p}"), ThreadKind::Nmp { part: p }, move |ctx| {
            let mut sum = 0u64;
            let mut idle = 8u64;
            while !ctx.stop_requested() {
                let v = ctx.read_u64_acquire(spad);
                if v != 0 {
                    sum = sum.wrapping_add(v);
                    ctx.write_u64(h, sum);
                    ctx.write_u64(spad + 8, sum);
                    ctx.write_u64_release(spad, 0);
                    idle = 8;
                } else {
                    ctx.idle(idle);
                    idle = (idle * 2).min(128);
                }
            }
        });
    }

    // Hosts: post to alternating partitions; the wait for each ack backs
    // off exponentially per empty poll and re-arms on progress.
    for core in 0..3usize {
        let m = Arc::clone(&machine);
        let out = results;
        sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| {
            let mut last = 0u64;
            for i in 0..10u64 {
                let p = (core + i as usize) % m.partitions();
                let spad = m.map().spad_base(p);
                let mut idle = 4u64;
                while ctx.mmio_read_u64_acquire(spad) != 0 {
                    ctx.idle(idle);
                    idle = (idle * 2).min(64);
                }
                ctx.mmio_write_u64_release(spad, 1 + core as u64 * 100 + i);
                let mut idle = 4u64;
                loop {
                    let s = ctx.mmio_read_u64_acquire(spad + 8);
                    if s != last && s != 0 {
                        last = s;
                        break;
                    }
                    ctx.idle(idle);
                    idle = (idle * 2).min(64);
                }
            }
            ctx.write_u64(out + core as u32 * 8, last);
        });
    }

    let outcome = sim.run();

    let mut fp = String::new();
    fp.push_str(&format!("clocks={:?}\n", outcome.clocks));
    fp.push_str(&format!("makespan={}\n", outcome.makespan()));
    for core in 0..3u32 {
        fp.push_str(&format!("r{core}={}\n", machine.ram().read_u64(results + core * 8)));
    }
    for (p, h) in heap.iter().enumerate() {
        fp.push_str(&format!("heap{p}={}\n", machine.ram().read_u64(*h)));
    }
    fp.push_str(&format!("snapshot={:?}\n", machine.mem().snapshot()));
    fp.push_str(&format!("summary={:?}\n", tracer.summary()));
    fp.push_str(&format!("events={:?}\n", tracer.events()));
    fp.push_str(&format!("report={:?}\n", analysis.report()));
    fp.push_str(&nmp_sim::trace::TraceSink::chrome_json(&tracer));
    fp
}

/// State-driven adaptive back-off is shard-invariant: shards=1, 2, and an
/// oversubscribed 4 (clamped to the vault count) agree byte-for-byte.
#[test]
fn adaptive_backoff_is_shard_invariant() {
    let legacy = fingerprint_adaptive_backoff(1);
    assert_eq!(legacy, fingerprint_adaptive_backoff(2), "shards=2 diverged");
    assert_eq!(legacy, fingerprint_adaptive_backoff(4), "shards=4 (clamped) diverged");
}

/// A worker panic inside a sharded run still propagates with the original
/// message (gates open so no peer deadlocks waiting on the dead shard).
#[test]
fn sharded_panic_propagates_with_message() {
    let machine = Machine::new(Config::tiny().with_shards(2));
    let base = machine.host_arena().alloc(8);
    let mut sim = machine.simulation();
    for p in 0..machine.partitions() {
        sim.spawn_daemon(format!("nmp{p}"), ThreadKind::Nmp { part: p }, move |ctx| {
            while !ctx.stop_requested() {
                ctx.idle(16);
            }
        });
    }
    sim.spawn("boom", ThreadKind::Host { core: 0 }, move |ctx| {
        ctx.write_u64(base, 1);
        panic!("deliberate test panic");
    });
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run()))
        .expect_err("worker panic must propagate");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("deliberate test panic"), "unexpected panic payload: {msg}");
}
