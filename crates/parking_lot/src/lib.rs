//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the few external dependencies are vendored as minimal API-compatible
//! shims. This one provides `Mutex` and `RwLock` with parking_lot's
//! poison-free guard-returning API, backed by `std::sync`. Lock poisoning is
//! deliberately ignored (parking_lot has no poisoning; a panicking critical
//! section in this workspace is already fatal to the test or simulation).

use std::sync::PoisonError;

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion primitive with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is acquired and return a guard.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Block until shared read access is acquired.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Block until exclusive write access is acquired.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(7);
        assert_eq!(*l.read(), 7);
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
        assert_eq!(l.into_inner(), 9);
    }
}
