//! Cache-front-end request streams for the `hybrids-server` load
//! generator.
//!
//! Where [`crate::ops`] speaks the data-structure vocabulary (insert fails
//! on duplicates, update fails on absent keys), a cache front end speaks
//! memcached verbs: `get`, `set` (insert-or-overwrite), `delete`. This
//! module generates deterministic per-connection streams of those verbs —
//! a pure function of a `u64` seed, like everything else in this crate —
//! so the load generator and the sim-vs-native differential tests can
//! replay byte-identical request sequences.

use serde::{Deserialize, Serialize};

use crate::keys::{Key, KeySpace, Value};
use crate::ops::KeyDist;
use crate::rng::Rng;
use crate::zipf::ScrambledZipfian;

/// One cache-protocol request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheRequest {
    /// Look up a key.
    Get(Key),
    /// Store a value under a key, overwriting any previous value.
    Set(Key, Value),
    /// Remove a key if present.
    Delete(Key),
}

/// Percentage mix of cache verbs; must sum to 100.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheMix {
    /// Percent of `get` requests.
    pub get: u8,
    /// Percent of `set` requests.
    pub set: u8,
    /// Percent of `delete` requests.
    pub delete: u8,
}

impl CacheMix {
    /// Build a mix; panics unless the percentages sum to 100.
    pub fn new(get: u8, set: u8, delete: u8) -> Self {
        assert_eq!(
            get as u32 + set as u32 + delete as u32,
            100,
            "cache mix percentages must sum to 100"
        );
        CacheMix { get, set, delete }
    }

    /// The memcached-style default: 90% get / 9% set / 1% delete.
    pub fn read_heavy() -> Self {
        CacheMix::new(90, 9, 1)
    }

    /// A write-heavy stress mix: 50% get / 40% set / 10% delete.
    pub fn write_heavy() -> Self {
        CacheMix::new(50, 40, 10)
    }

    /// `"90-9-1"`-style label for artifact rows.
    pub fn label(&self) -> String {
        format!("{}-{}-{}", self.get, self.set, self.delete)
    }

    /// Parse a `get/set/delete` triple like `"90/9/1"` (also accepts `-`
    /// or `:` separators). Returns `None` unless all three parse and sum
    /// to 100.
    pub fn parse(s: &str) -> Option<Self> {
        let parts: Vec<&str> = s.split(['/', '-', ':']).collect();
        if parts.len() != 3 {
            return None;
        }
        let get = parts[0].trim().parse().ok()?;
        let set = parts[1].trim().parse().ok()?;
        let delete = parts[2].trim().parse().ok()?;
        if get as u32 + set as u32 + delete as u32 != 100 {
            return None;
        }
        Some(CacheMix { get, set, delete })
    }
}

/// Deterministic generator of per-connection cache request streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestSpec {
    /// Root seed; connection `c` uses `Rng::new(seed).fork(c)`.
    pub seed: u64,
    /// Number of connections (parallel streams).
    pub conns: u32,
    /// Requests per connection.
    pub per_conn: u32,
    /// Key popularity distribution for `get`/`delete` targets.
    pub dist: KeyDist,
    /// Verb mix.
    pub mix: CacheMix,
}

impl RequestSpec {
    /// Generate one request stream per connection. `set` targets the same
    /// popularity distribution as `get`, so hot keys stay resident; values
    /// are nonzero and derived from the per-connection RNG.
    pub fn generate(&self, ks: &KeySpace) -> Vec<Vec<CacheRequest>> {
        let zipf = match self.dist {
            KeyDist::ZipfianTheta { theta_x100 } => {
                ScrambledZipfian::with_theta(ks.total_initial() as u64, theta_x100 as f64 / 100.0)
            }
            _ => ScrambledZipfian::ycsb(ks.total_initial() as u64),
        };
        let root = Rng::new(self.seed);
        (0..self.conns)
            .map(|c| {
                let mut rng = root.fork(c as u64);
                (0..self.per_conn)
                    .map(|_| {
                        let key = self.pick_key(ks, &zipf, &mut rng);
                        let roll = rng.below(100) as u8;
                        if roll < self.mix.get {
                            CacheRequest::Get(key)
                        } else if roll < self.mix.get + self.mix.set {
                            CacheRequest::Set(key, rng.next_u32() | 1)
                        } else {
                            CacheRequest::Delete(key)
                        }
                    })
                    .collect()
            })
            .collect()
    }

    fn pick_key(&self, ks: &KeySpace, zipf: &ScrambledZipfian, rng: &mut Rng) -> Key {
        match self.dist {
            KeyDist::Zipfian | KeyDist::ZipfianTheta { .. } => {
                ks.initial_key(zipf.next_index(rng) as u32)
            }
            KeyDist::Uniform => ks.uniform_initial(rng),
        }
    }
}

/// Deterministic open-loop send schedule: request `i` of a connection is
/// *due* at a fixed offset from the stream's start, independent of when
/// earlier responses arrive. Closed-loop clients (send, wait, repeat)
/// measure service time under self-limiting load; an open-loop client
/// keeps the arrival process fixed, so queueing delay shows up in the
/// latency numbers instead of silently throttling the offered rate —
/// the standard methodology for connection-scaling studies.
///
/// The schedule is uniform pacing at `rate_per_conn` requests per second
/// per connection, a pure function of the rate (no RNG), so two runs
/// offer byte- and time-identical load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenLoop {
    /// Target request rate per connection, in requests per second.
    pub rate_per_conn: u32,
}

impl OpenLoop {
    /// Build a schedule; panics on a zero rate.
    pub fn new(rate_per_conn: u32) -> Self {
        assert!(rate_per_conn > 0, "open-loop rate must be positive");
        OpenLoop { rate_per_conn }
    }

    /// Nanosecond offset (from the stream start) at which request `i` is
    /// due. Exact integer arithmetic: request `i` is due at
    /// `i * 1e9 / rate` truncated, so the schedule never drifts.
    pub fn offset_ns(&self, i: u32) -> u64 {
        i as u64 * 1_000_000_000 / self.rate_per_conn as u64
    }

    /// The full schedule for an `n`-request stream.
    pub fn schedule_ns(&self, n: u32) -> Vec<u64> {
        (0..n).map(|i| self.offset_ns(i)).collect()
    }

    /// Split a total target rate evenly across `conns` connections,
    /// rounding up so the aggregate offered rate never undershoots the
    /// request. Returns `None` for a zero rate or zero connections.
    pub fn split_total(total_rate: u32, conns: u32) -> Option<Self> {
        if total_rate == 0 || conns == 0 {
            return None;
        }
        Some(OpenLoop::new(total_rate.div_ceil(conns)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ks() -> KeySpace {
        KeySpace::new(256, 4, 64)
    }

    #[test]
    fn open_loop_schedule_is_exact_and_monotone() {
        let ol = OpenLoop::new(1_000); // 1 kHz -> 1 ms spacing
        assert_eq!(ol.offset_ns(0), 0);
        assert_eq!(ol.offset_ns(1), 1_000_000);
        assert_eq!(ol.offset_ns(1_000), 1_000_000_000);
        let sched = ol.schedule_ns(100);
        assert_eq!(sched.len(), 100);
        assert!(sched.windows(2).all(|w| w[0] < w[1]));
        // Non-divisible rates truncate but never drift: after `rate`
        // requests exactly one second has elapsed.
        let odd = OpenLoop::new(3);
        assert_eq!(odd.offset_ns(3), 1_000_000_000);
        assert_eq!(odd.offset_ns(300), 100_000_000_000);
    }

    #[test]
    fn open_loop_split_rounds_up() {
        assert_eq!(OpenLoop::split_total(1_000, 4), Some(OpenLoop::new(250)));
        assert_eq!(OpenLoop::split_total(1_000, 3), Some(OpenLoop::new(334)));
        assert_eq!(OpenLoop::split_total(0, 4), None);
        assert_eq!(OpenLoop::split_total(100, 0), None);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn open_loop_rejects_zero_rate() {
        let _ = OpenLoop::new(0);
    }

    #[test]
    fn mix_parse_and_label() {
        assert_eq!(CacheMix::parse("90/9/1"), Some(CacheMix::read_heavy()));
        assert_eq!(CacheMix::parse("50-40-10"), Some(CacheMix::write_heavy()));
        assert_eq!(CacheMix::parse("90:9:1").unwrap().label(), "90-9-1");
        assert_eq!(CacheMix::parse("90/9"), None);
        assert_eq!(CacheMix::parse("90/9/2"), None);
        assert_eq!(CacheMix::parse("a/b/c"), None);
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn mix_must_sum_to_100() {
        let _ = CacheMix::new(50, 10, 10);
    }

    #[test]
    fn generate_is_deterministic_and_shaped() {
        let spec = RequestSpec {
            seed: 7,
            conns: 3,
            per_conn: 500,
            dist: KeyDist::Uniform,
            mix: CacheMix::read_heavy(),
        };
        let a = spec.generate(&ks());
        let b = spec.generate(&ks());
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        for stream in &a {
            assert_eq!(stream.len(), 500);
        }
        // Streams differ across connections.
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn mix_ratios_roughly_hold() {
        let spec = RequestSpec {
            seed: 11,
            conns: 1,
            per_conn: 10_000,
            dist: KeyDist::Zipfian,
            mix: CacheMix::new(70, 20, 10),
        };
        let stream = &spec.generate(&ks())[0];
        let gets = stream.iter().filter(|r| matches!(r, CacheRequest::Get(_))).count();
        let sets = stream.iter().filter(|r| matches!(r, CacheRequest::Set(..))).count();
        let dels = stream.iter().filter(|r| matches!(r, CacheRequest::Delete(_))).count();
        assert_eq!(gets + sets + dels, 10_000);
        assert!((6_500..=7_500).contains(&gets), "gets={gets}");
        assert!((1_500..=2_500).contains(&sets), "sets={sets}");
        assert!((500..=1_500).contains(&dels), "dels={dels}");
        // Set values are nonzero (zero is the structures' "absent" marker).
        for r in stream {
            if let CacheRequest::Set(_, v) = r {
                assert_ne!(*v, 0);
            }
        }
    }

    #[test]
    fn keys_stay_in_universe() {
        let k = ks();
        let spec = RequestSpec {
            seed: 3,
            conns: 2,
            per_conn: 2_000,
            dist: KeyDist::Zipfian,
            mix: CacheMix::write_heavy(),
        };
        for stream in spec.generate(&k) {
            for r in stream {
                let key = match r {
                    CacheRequest::Get(k) | CacheRequest::Delete(k) | CacheRequest::Set(k, _) => k,
                };
                assert!(key > 0 && key < k.keyspace());
            }
        }
    }
}
