//! # workloads — deterministic YCSB-style workload generation
//!
//! Key universes, zipfian/uniform key distributions, and operation-mix
//! stream generation for the HybriDS (SPAA '22) reproduction. Everything is
//! a pure function of a `u64` seed: no global state, no `rand` dependency,
//! bit-stable across runs and platforms.
//!
//! ```
//! use workloads::{KeySpace, WorkloadSpec};
//!
//! let ks = KeySpace::new(1024, 4, 128);        // 1024 keys, 4 partitions
//! let spec = WorkloadSpec::ycsb_c(42, 8, 100); // seed 42, 8 threads
//! let streams = spec.generate(&ks);
//! assert_eq!(streams.len(), 8);
//! assert_eq!(streams[0].len(), 100);
//! ```

pub mod keys;
pub mod ops;
pub mod requests;
pub mod rng;
pub mod zipf;

pub use keys::{Key, KeySpace, Value, KEY_STRIDE};
pub use ops::{InsertDist, KeyDist, Mix, Op, WorkloadSpec};
pub use requests::{CacheMix, CacheRequest, OpenLoop, RequestSpec};
pub use rng::{fnv64, mix64, splitmix64, Rng};
pub use zipf::{ScrambledZipfian, Zipfian, YCSB_THETA};
