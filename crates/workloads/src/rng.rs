//! Deterministic PRNGs for workload generation.
//!
//! We implement SplitMix64 (seed expansion / hashing) and xoshiro256**
//! (stream generation) locally instead of depending on `rand`, so that
//! workloads are bit-stable across toolchains and every experiment is
//! exactly reproducible from its seed.

/// SplitMix64 step: hashes `state` into a well-mixed 64-bit value.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One-shot 64-bit mix of a value (stateless SplitMix64 finalizer).
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut s = x;
    splitmix64(&mut s)
}

/// FNV-1a 64-bit hash of an integer, as used by YCSB's key scrambling.
#[inline]
pub fn fnv64(x: u64) -> u64 {
    const PRIME: u64 = 0x1000_0000_01b3;
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut v = x;
    for _ in 0..8 {
        h ^= v & 0xFF;
        h = h.wrapping_mul(PRIME);
        v >>= 8;
    }
    h
}

/// xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed via SplitMix64 expansion (never yields the all-zero state).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    /// Derive an independent stream for substream `idx` (e.g. per thread).
    pub fn fork(&self, idx: u64) -> Rng {
        Rng::new(mix64(self.s[0] ^ mix64(idx.wrapping_add(0xA5A5_5A5A))))
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)` via Lemire's multiply-shift reduction.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Geometric "coin-flip" height in `[1, max]` with p = 1/2 per level —
    /// the skiplist node-height distribution.
    pub fn skiplist_height(&mut self, max: u32) -> u32 {
        let bits = self.next_u64();
        ((bits.trailing_ones()) + 1).min(max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_is_independent_and_deterministic() {
        let root = Rng::new(7);
        let mut f1 = root.fork(0);
        let mut f2 = root.fork(1);
        let mut f1b = root.fork(0);
        assert_ne!(f1.next_u64(), f2.next_u64());
        let _ = f1b.next_u64();
        assert_eq!(f1.next_u64(), f1b.next_u64());
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn below_roughly_uniform() {
        let mut r = Rng::new(9);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.below(8) as usize] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut r = Rng::new(4);
        for _ in 0..10_000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn skiplist_height_geometric() {
        let mut r = Rng::new(5);
        let n = 100_000;
        let mut h1 = 0u32;
        let mut h2 = 0u32;
        for _ in 0..n {
            match r.skiplist_height(32) {
                1 => h1 += 1,
                2 => h2 += 1,
                _ => {}
            }
        }
        // P(h=1) = 1/2, P(h=2) = 1/4
        assert!((45_000..55_000).contains(&h1), "h1={h1}");
        assert!((22_000..28_000).contains(&h2), "h2={h2}");
    }

    #[test]
    fn skiplist_height_capped() {
        let mut r = Rng::new(6);
        for _ in 0..100_000 {
            assert!(r.skiplist_height(4) <= 4);
        }
    }

    #[test]
    fn fnv_distinct_on_consecutive_inputs() {
        let h: Vec<u64> = (0..64).map(fnv64).collect();
        let mut sorted = h.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64);
    }
}
