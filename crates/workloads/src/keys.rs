//! Key-space layout shared by workloads and data structures.
//!
//! Keys and values are 4 bytes, as in the paper (§3.2). The key universe is
//! split into `parts` equal ranges — one per NMP partition (§3.3 "nodes in
//! the NMP-managed portion are distributed across NMP partitions based on
//! predefined, equal-size ranges of keys").
//!
//! Initial keys are laid out on a stride-8 grid inside each partition, with
//! a configurable *headroom* of free key slots at the top of each partition.
//! The grid leaves gaps for uniformly-spread insertions; the headroom hosts
//! the paper's split-heavy B+ tree insertion pattern ("insert keys were
//! chosen so that insertions would happen at the last leaf node of each NMP
//! partition", §5.2).

use serde::{Deserialize, Serialize};

use crate::rng::Rng;

/// 4-byte key, as in the paper.
pub type Key = u32;
/// 4-byte associated value.
pub type Value = u32;

/// Grid spacing of initial keys (power of two; leaves 7 free slots between
/// neighbors for gap insertions).
pub const KEY_STRIDE: u32 = 8;

/// Deterministic layout of initial keys over a partitioned key universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeySpace {
    /// Number of NMP partitions (equal key ranges).
    pub parts: u32,
    /// Initial keys per partition.
    pub per_part: u32,
    /// Free key slots reserved above the populated span of each partition.
    pub headroom: u32,
}

impl KeySpace {
    /// Layout `total_initial` keys over `parts` partitions with `headroom`
    /// insertable tail slots per partition. `total_initial` must divide
    /// evenly (pad your N to a multiple of `parts`).
    pub fn new(total_initial: u32, parts: u32, headroom: u32) -> Self {
        assert!(parts > 0 && total_initial.is_multiple_of(parts), "initial keys must split evenly");
        let per_part = total_initial / parts;
        let ks = KeySpace { parts, per_part, headroom };
        assert!(
            (ks.part_range() as u64) * parts as u64 <= u32::MAX as u64,
            "key universe exceeds 32-bit keys"
        );
        ks
    }

    /// Width of one partition's key range.
    pub fn part_range(&self) -> u32 {
        KEY_STRIDE * (self.per_part + 1) + self.headroom
    }

    /// Exclusive upper bound of the key universe.
    pub fn keyspace(&self) -> u32 {
        self.part_range() * self.parts
    }

    /// Total number of initial keys.
    pub fn total_initial(&self) -> u32 {
        self.per_part * self.parts
    }

    /// Which partition a key belongs to.
    pub fn partition_of(&self, key: Key) -> u32 {
        debug_assert!(key < self.keyspace());
        key / self.part_range()
    }

    /// First key value of partition `p`'s range.
    pub fn part_base(&self, p: u32) -> Key {
        p * self.part_range()
    }

    /// The `i`-th initial key (global index in `[0, total_initial)`),
    /// in ascending key order.
    pub fn initial_key(&self, i: u32) -> Key {
        debug_assert!(i < self.total_initial());
        let p = i / self.per_part;
        let j = i % self.per_part;
        self.part_base(p) + KEY_STRIDE * (j + 1)
    }

    /// All initial keys, ascending.
    pub fn initial_keys(&self) -> Vec<Key> {
        (0..self.total_initial()).map(|i| self.initial_key(i)).collect()
    }

    /// Largest populated key of partition `p`.
    pub fn populated_top(&self, p: u32) -> Key {
        self.part_base(p) + KEY_STRIDE * self.per_part
    }

    /// The `c`-th tail key of partition `p`: strictly above every populated
    /// key of the partition, strictly below the next partition. Successive
    /// `c` produce incrementing keys, so inserts land in the partition's
    /// last leaf (maximum node splits).
    pub fn tail_key(&self, p: u32, c: u32) -> Key {
        assert!(
            c < self.headroom + KEY_STRIDE - 1,
            "tail headroom exhausted in partition {p} (c={c}); raise KeySpace headroom"
        );
        self.populated_top(p) + 1 + c
    }

    /// A uniformly random key that lies in a gap of the initial grid
    /// (suitable as a "fully uniform" insertion: lands in a uniformly random
    /// leaf, so it almost never causes a node split).
    pub fn gap_key(&self, rng: &mut Rng) -> Key {
        let i = rng.below(self.total_initial() as u64) as u32;
        let off = 1 + rng.below((KEY_STRIDE - 1) as u64) as u32;
        self.initial_key(i) + off
    }

    /// A uniformly random *initial* key (read/remove target).
    pub fn uniform_initial(&self, rng: &mut Rng) -> Key {
        self.initial_key(rng.below(self.total_initial() as u64) as u32)
    }

    /// A gap key adjacent to the `i`-th initial key (same partition).
    /// With a zipfian `i`, insertions concentrate on hot partitions —
    /// the skew knob of the pqueue minima-cache contention sweep. Keys may
    /// repeat across calls, so only duplicate-tolerant structures (the
    /// priority queue) should be driven with it.
    pub fn gap_key_near(&self, i: u32, rng: &mut Rng) -> Key {
        let off = 1 + rng.below((KEY_STRIDE - 1) as u64) as u32;
        self.initial_key(i % self.total_initial()) + off
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ks() -> KeySpace {
        KeySpace::new(64, 4, 100)
    }

    #[test]
    fn initial_keys_sorted_unique_in_bounds() {
        let k = ks();
        let keys = k.initial_keys();
        assert_eq!(keys.len(), 64);
        for w in keys.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(*keys.last().unwrap() < k.keyspace());
        assert!(keys[0] > 0, "key 0 reserved");
    }

    #[test]
    fn partition_of_initial_keys_matches_layout() {
        let k = ks();
        for i in 0..k.total_initial() {
            let key = k.initial_key(i);
            assert_eq!(k.partition_of(key), i / k.per_part);
        }
    }

    #[test]
    fn tail_keys_stay_inside_partition_and_above_population() {
        let k = ks();
        for p in 0..4 {
            for c in 0..50 {
                let t = k.tail_key(p, c);
                assert_eq!(k.partition_of(t), p);
                assert!(t > k.populated_top(p));
            }
        }
    }

    #[test]
    fn tail_keys_increment() {
        let k = ks();
        assert_eq!(k.tail_key(1, 1), k.tail_key(1, 0) + 1);
    }

    #[test]
    #[should_panic(expected = "headroom exhausted")]
    fn tail_overflow_detected() {
        let k = ks();
        let _ = k.tail_key(0, k.headroom + KEY_STRIDE);
    }

    #[test]
    fn gap_keys_never_collide_with_initial() {
        let k = ks();
        let initial: std::collections::HashSet<Key> = k.initial_keys().into_iter().collect();
        let mut rng = Rng::new(11);
        for _ in 0..1000 {
            let g = k.gap_key(&mut rng);
            assert!(!initial.contains(&g));
            assert!(g < k.keyspace());
        }
    }

    #[test]
    fn uniform_initial_hits_all_partitions() {
        let k = ks();
        let mut rng = Rng::new(12);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[k.partition_of(k.uniform_initial(&mut rng)) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "split evenly")]
    fn uneven_split_rejected() {
        let _ = KeySpace::new(63, 4, 10);
    }

    #[test]
    fn paper_scale_fits_u32() {
        // 2^22 keys over 8 partitions with generous headroom.
        let k = KeySpace::new(1 << 22, 8, 1 << 16);
        assert!(k.keyspace() > 1 << 22);
    }
}
