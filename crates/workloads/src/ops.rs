//! Operation mixes and per-thread operation stream generation.
//!
//! The paper's workloads are:
//! * **YCSB-C** (§5.1): 100% reads, zipfian key distribution;
//! * **sensitivity mixes** (§5.2): `X-Y-Z` read-insert-remove ratios with
//!   uniform key distribution, where B+ tree insert keys are either
//!   *split-heavy* (targeted at the last leaf of each NMP partition) or
//!   *fully uniform* (spread over all leaves, incurring no splits).

use serde::{Deserialize, Serialize};

use crate::keys::{Key, KeySpace, Value};
use crate::rng::Rng;
use crate::zipf::ScrambledZipfian;

/// A single data-structure operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    Read(Key),
    Insert(Key, Value),
    Remove(Key),
    Update(Key, Value),
    /// Range scan: read up to the given number of consecutive key/value
    /// pairs starting at the first key `>=` the given key (YCSB-E style;
    /// an extension beyond the paper's point-operation evaluation).
    Scan(Key, u16),
    /// Remove and return the smallest key (priority-queue structures only;
    /// §6.3 generalization). Carries no key: the target is decided by the
    /// structure's host-side merge of partition minima.
    ExtractMin,
}

impl Op {
    pub fn key(&self) -> Key {
        match *self {
            Op::Read(k) | Op::Insert(k, _) | Op::Remove(k) | Op::Update(k, _) | Op::Scan(k, _) => k,
            Op::ExtractMin => 0,
        }
    }
}

/// Read / insert / remove / update / scan / extract-min percentages (must
/// sum to 100).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mix {
    pub read: u8,
    pub insert: u8,
    pub remove: u8,
    pub update: u8,
    pub scan: u8,
    pub extract: u8,
}

impl Mix {
    pub const fn new(read: u8, insert: u8, remove: u8, update: u8) -> Self {
        let m = Mix { read, insert, remove, update, scan: 0, extract: 0 };
        assert!(read as u32 + insert as u32 + remove as u32 + update as u32 == 100);
        m
    }

    pub const fn with_scans(read: u8, insert: u8, remove: u8, update: u8, scan: u8) -> Self {
        let m = Mix { read, insert, remove, update, scan, extract: 0 };
        assert!(read as u32 + insert as u32 + remove as u32 + update as u32 + scan as u32 == 100);
        m
    }

    /// Priority-queue mix: inserts and extract-mins only.
    pub const fn pqueue(insert: u8, extract: u8) -> Self {
        let m = Mix { read: 0, insert, remove: 0, update: 0, scan: 0, extract };
        assert!(insert as u32 + extract as u32 == 100);
        m
    }

    /// YCSB core workload C: read-only.
    pub const fn ycsb_c() -> Self {
        Mix::new(100, 0, 0, 0)
    }

    /// YCSB core workload E: short range scans with occasional inserts.
    pub const fn ycsb_e() -> Self {
        Mix::with_scans(0, 5, 0, 0, 95)
    }

    /// The paper's `X-Y-Z` read-insert-remove notation.
    pub const fn read_insert_remove(read: u8, insert: u8, remove: u8) -> Self {
        Mix::new(read, insert, remove, 0)
    }

    /// The four mixes of Figures 7–9.
    pub fn sensitivity_suite() -> Vec<Mix> {
        vec![
            Mix::read_insert_remove(100, 0, 0),
            Mix::read_insert_remove(90, 5, 5),
            Mix::read_insert_remove(70, 15, 15),
            Mix::read_insert_remove(50, 25, 25),
        ]
    }

    /// Paper-style label, e.g. `50-25-25`; priority-queue mixes are
    /// labeled `pq-i<insert>-x<extract>`.
    pub fn label(&self) -> String {
        if self.extract != 0 {
            return format!("pq-i{}-x{}", self.insert, self.extract);
        }
        let mut s = format!("{}-{}-{}", self.read, self.insert, self.remove);
        if self.update != 0 {
            s.push_str(&format!("-u{}", self.update));
        }
        if self.scan != 0 {
            s.push_str(&format!("-s{}", self.scan));
        }
        s
    }
}

/// Distribution of read/update target keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KeyDist {
    /// YCSB scrambled-zipfian over the initial keys (θ = 0.99).
    Zipfian,
    /// Scrambled zipfian with skew θ = `theta_x100 / 100` (skew studies).
    ZipfianTheta { theta_x100: u32 },
    /// Uniform over the initial keys.
    Uniform,
}

/// Placement of insert keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InsertDist {
    /// Uniformly random grid-gap keys: lands in a uniformly random leaf
    /// (the "fully uniform" workload; no B+ tree node splits).
    UniformGap,
    /// Incrementing keys at the tail of each partition, rotating across
    /// partitions: maximum node splits, evenly spread over NMP partitions.
    PartitionTail,
    /// Gap keys adjacent to keys drawn from the read distribution's
    /// zipfian: insertions concentrate on hot partitions. Keys may repeat,
    /// so only duplicate-tolerant structures (the priority queue) may use
    /// this — it drives the minima-cache contention sweep.
    ZipfianGap,
}

/// Everything needed to deterministically generate an experiment's
/// operation streams.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    pub seed: u64,
    pub threads: u32,
    pub ops_per_thread: u32,
    pub mix: Mix,
    pub read_dist: KeyDist,
    pub insert_dist: InsertDist,
}

impl WorkloadSpec {
    /// YCSB-C at a given seed.
    pub fn ycsb_c(seed: u64, threads: u32, ops_per_thread: u32) -> Self {
        WorkloadSpec {
            seed,
            threads,
            ops_per_thread,
            mix: Mix::ycsb_c(),
            read_dist: KeyDist::Zipfian,
            insert_dist: InsertDist::UniformGap,
        }
    }

    /// Priority-queue workload: `insert_pct`% inserts at uniformly random
    /// gap keys, the rest extract-mins.
    pub fn pqueue(seed: u64, threads: u32, ops_per_thread: u32, insert_pct: u8) -> Self {
        WorkloadSpec {
            seed,
            threads,
            ops_per_thread,
            mix: Mix::pqueue(insert_pct, 100 - insert_pct),
            read_dist: KeyDist::Uniform,
            insert_dist: InsertDist::UniformGap,
        }
    }

    /// Skewed priority-queue workload: `insert_pct`% inserts at gap keys
    /// adjacent to scrambled-zipfian(θ = `theta_x100`/100) initial keys,
    /// the rest extract-mins. Hot partitions absorb most inserts while
    /// extract-min drains globally, so cold partitions empty out and the
    /// host's minima cache takes stale-probe misses — the contention the
    /// sweep measures.
    pub fn pqueue_skewed(
        seed: u64,
        threads: u32,
        ops_per_thread: u32,
        insert_pct: u8,
        theta_x100: u32,
    ) -> Self {
        WorkloadSpec {
            seed,
            threads,
            ops_per_thread,
            mix: Mix::pqueue(insert_pct, 100 - insert_pct),
            read_dist: KeyDist::ZipfianTheta { theta_x100 },
            insert_dist: InsertDist::ZipfianGap,
        }
    }

    /// Hash-map workload: a read-dominated point-op mix (60-20-10 plus 10%
    /// updates, no scans) over the chosen key distribution.
    pub fn hashmap_mixed(seed: u64, threads: u32, ops_per_thread: u32, dist: KeyDist) -> Self {
        WorkloadSpec {
            seed,
            threads,
            ops_per_thread,
            mix: Mix::new(60, 20, 10, 10),
            read_dist: dist,
            insert_dist: InsertDist::UniformGap,
        }
    }

    /// Generate one operation stream per thread. Split-heavy insert lanes
    /// are disjoint per thread, so no two threads ever insert the same key.
    pub fn generate(&self, ks: &KeySpace) -> Vec<Vec<Op>> {
        let zipf = match self.read_dist {
            KeyDist::ZipfianTheta { theta_x100 } => {
                ScrambledZipfian::with_theta(ks.total_initial() as u64, theta_x100 as f64 / 100.0)
            }
            _ => ScrambledZipfian::ycsb(ks.total_initial() as u64),
        };
        let plain_zipf = (self.insert_dist == InsertDist::ZipfianGap).then(|| {
            let theta = match self.read_dist {
                KeyDist::ZipfianTheta { theta_x100 } => theta_x100 as f64 / 100.0,
                _ => crate::zipf::YCSB_THETA,
            };
            crate::zipf::Zipfian::new(ks.total_initial() as u64, theta)
        });
        let root = Rng::new(self.seed);
        let lane = ks.headroom / self.threads.max(1);
        (0..self.threads)
            .map(|t| {
                let mut rng = root.fork(t as u64);
                let mut tail_counters = vec![0u32; ks.parts as usize];
                let mut next_part = t % ks.parts; // rotate starting offset per thread
                let mut ops = Vec::with_capacity(self.ops_per_thread as usize);
                for _ in 0..self.ops_per_thread {
                    let roll = rng.below(100) as u8;
                    let op = if roll < self.mix.read {
                        Op::Read(self.read_key(ks, &zipf, &mut rng))
                    } else if roll < self.mix.read + self.mix.insert {
                        let key = match self.insert_dist {
                            InsertDist::UniformGap => ks.gap_key(&mut rng),
                            InsertDist::ZipfianGap => {
                                // Unscrambled ranks mapped top-down: rank 0
                                // is the HIGHEST key, so insert heat
                                // concentrates on the last partition while
                                // extract-min drains the low partitions
                                // empty — that drain is what sends the
                                // minima cache stale.
                                let r = plain_zipf
                                    .as_ref()
                                    .expect("ZipfianGap builds a rank generator")
                                    .next_rank(&mut rng)
                                    as u32;
                                let i = ks.total_initial() - 1 - (r % ks.total_initial());
                                ks.gap_key_near(i, &mut rng)
                            }
                            InsertDist::PartitionTail => {
                                let p = next_part;
                                next_part = (next_part + 1) % ks.parts;
                                let c = tail_counters[p as usize];
                                assert!(
                                    c < lane,
                                    "per-thread tail lane exhausted; raise KeySpace headroom"
                                );
                                tail_counters[p as usize] += 1;
                                ks.tail_key(p, t * lane + c)
                            }
                        };
                        Op::Insert(key, nonzero_value(&mut rng))
                    } else if roll < self.mix.read + self.mix.insert + self.mix.remove {
                        Op::Remove(ks.uniform_initial(&mut rng))
                    } else if roll
                        < self.mix.read + self.mix.insert + self.mix.remove + self.mix.update
                    {
                        Op::Update(self.read_key(ks, &zipf, &mut rng), nonzero_value(&mut rng))
                    } else if roll
                        < self.mix.read
                            + self.mix.insert
                            + self.mix.remove
                            + self.mix.update
                            + self.mix.scan
                    {
                        // YCSB-E scan lengths: uniform 1..=100.
                        let len = 1 + rng.below(100) as u16;
                        Op::Scan(self.read_key(ks, &zipf, &mut rng), len)
                    } else {
                        Op::ExtractMin
                    };
                    ops.push(op);
                }
                ops
            })
            .collect()
    }

    fn read_key(&self, ks: &KeySpace, zipf: &ScrambledZipfian, rng: &mut Rng) -> Key {
        match self.read_dist {
            KeyDist::Zipfian | KeyDist::ZipfianTheta { .. } => {
                ks.initial_key(zipf.next_index(rng) as u32)
            }
            KeyDist::Uniform => ks.uniform_initial(rng),
        }
    }
}

fn nonzero_value(rng: &mut Rng) -> Value {
    rng.next_u32() | 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KEY_STRIDE;

    fn ks() -> KeySpace {
        KeySpace::new(1024, 4, 400)
    }

    #[test]
    fn mix_labels() {
        assert_eq!(Mix::read_insert_remove(50, 25, 25).label(), "50-25-25");
        assert_eq!(Mix::ycsb_c().label(), "100-0-0");
    }

    #[test]
    #[should_panic]
    fn mix_must_sum_to_100() {
        let _ = Mix::new(50, 10, 10, 10);
    }

    #[test]
    fn ycsb_c_is_all_reads() {
        let spec = WorkloadSpec::ycsb_c(1, 2, 500);
        for stream in spec.generate(&ks()) {
            assert_eq!(stream.len(), 500);
            assert!(stream.iter().all(|op| matches!(op, Op::Read(_))));
        }
    }

    #[test]
    fn mix_ratios_approximately_honored() {
        let spec = WorkloadSpec {
            seed: 2,
            threads: 1,
            ops_per_thread: 20_000,
            mix: Mix::read_insert_remove(50, 25, 25),
            read_dist: KeyDist::Uniform,
            insert_dist: InsertDist::UniformGap,
        };
        let ops = &spec.generate(&ks())[0];
        let reads = ops.iter().filter(|o| matches!(o, Op::Read(_))).count();
        let inserts = ops.iter().filter(|o| matches!(o, Op::Insert(..))).count();
        let removes = ops.iter().filter(|o| matches!(o, Op::Remove(_))).count();
        assert!((9_000..11_000).contains(&reads), "reads={reads}");
        assert!((4_000..6_000).contains(&inserts), "inserts={inserts}");
        assert!((4_000..6_000).contains(&removes), "removes={removes}");
    }

    #[test]
    fn deterministic_across_calls() {
        let spec = WorkloadSpec::ycsb_c(7, 4, 200);
        assert_eq!(spec.generate(&ks()), spec.generate(&ks()));
    }

    #[test]
    fn threads_get_distinct_streams() {
        let spec = WorkloadSpec::ycsb_c(7, 2, 200);
        let streams = spec.generate(&ks());
        assert_ne!(streams[0], streams[1]);
    }

    #[test]
    fn partition_tail_inserts_disjoint_across_threads_and_rotating() {
        let k = ks();
        let spec = WorkloadSpec {
            seed: 3,
            threads: 4,
            ops_per_thread: 400,
            mix: Mix::read_insert_remove(0, 100, 0),
            read_dist: KeyDist::Uniform,
            insert_dist: InsertDist::PartitionTail,
        };
        let streams = spec.generate(&k);
        let mut all = std::collections::HashSet::new();
        let mut parts_hit = [0u32; 4];
        for s in &streams {
            for op in s {
                let Op::Insert(key, _) = op else { panic!() };
                assert!(all.insert(*key), "duplicate split-heavy insert key {key}");
                parts_hit[k.partition_of(*key) as usize] += 1;
            }
        }
        // Inserts evenly rotated across partitions.
        assert!(parts_hit.iter().all(|&c| c == 400));
    }

    #[test]
    fn split_heavy_keys_increase_within_thread_and_partition() {
        let k = ks();
        let spec = WorkloadSpec {
            seed: 4,
            threads: 1,
            ops_per_thread: 100,
            mix: Mix::read_insert_remove(0, 100, 0),
            read_dist: KeyDist::Uniform,
            insert_dist: InsertDist::PartitionTail,
        };
        let stream = &spec.generate(&k)[0];
        let mut last = [0u32; 4];
        for op in stream {
            let Op::Insert(key, _) = op else { panic!() };
            let p = k.partition_of(*key) as usize;
            assert!(*key > last[p], "keys must increase within a partition");
            last[p] = *key;
        }
    }

    #[test]
    fn zipfian_reads_skew_toward_hot_keys() {
        let k = KeySpace::new(4096, 4, 64);
        let spec = WorkloadSpec::ycsb_c(5, 1, 50_000);
        let ops = &spec.generate(&k)[0];
        let mut counts = std::collections::HashMap::new();
        for op in ops {
            *counts.entry(op.key()).or_insert(0u32) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        assert!(max > 50_000 / 4096 * 20, "hottest key count = {max}");
    }

    #[test]
    fn pqueue_mix_ratios_pinned() {
        let spec = WorkloadSpec::pqueue(6, 1, 20_000, 50);
        let ops = &spec.generate(&ks())[0];
        let inserts = ops.iter().filter(|o| matches!(o, Op::Insert(..))).count();
        let extracts = ops.iter().filter(|o| matches!(o, Op::ExtractMin)).count();
        assert_eq!(inserts + extracts, 20_000, "pqueue mix emits only inserts and extract-mins");
        assert!((9_000..11_000).contains(&inserts), "inserts={inserts}");
        assert!((9_000..11_000).contains(&extracts), "extracts={extracts}");
        // Insert keys are grid-gap keys: never on the initial grid.
        for op in ops {
            if let Op::Insert(k, v) = op {
                assert!(k % KEY_STRIDE != 0, "gap key expected, got {k}");
                assert!(*v != 0);
            }
        }
    }

    #[test]
    fn pqueue_workload_deterministic_and_labeled() {
        let spec = WorkloadSpec::pqueue(9, 3, 300, 80);
        assert_eq!(spec.generate(&ks()), spec.generate(&ks()));
        assert_eq!(spec.mix.label(), "pq-i80-x20");
        let inserts: usize =
            spec.generate(&ks()).iter().flatten().filter(|o| matches!(o, Op::Insert(..))).count();
        assert!((650..=800).contains(&inserts), "80% of 900 ops, got {inserts}");
    }

    #[test]
    fn pqueue_skewed_concentrates_inserts() {
        let space = ks();
        let hot = |theta_x100: u32| {
            let spec = WorkloadSpec::pqueue_skewed(13, 1, 20_000, 50, theta_x100);
            assert_eq!(spec.generate(&space), spec.generate(&space), "must be deterministic");
            let mut per_part = vec![0u32; space.parts as usize];
            for op in &spec.generate(&space)[0] {
                if let Op::Insert(k, _) = op {
                    assert!(k % KEY_STRIDE != 0, "gap key expected, got {k}");
                    per_part[space.partition_of(*k) as usize] += 1;
                }
            }
            let total: u32 = per_part.iter().sum();
            per_part.iter().copied().max().unwrap() as f64 / total as f64
        };
        // Higher θ (< 1, the generator's domain) concentrates a larger
        // insert share on the hottest partition; near-uniform θ spreads it.
        let near_uniform = hot(10);
        let skewed = hot(99);
        assert!(near_uniform < 0.45, "θ=0.10 hottest-partition share {near_uniform}");
        assert!(skewed > near_uniform + 0.1, "θ=0.99 share {skewed} vs {near_uniform}");
    }

    #[test]
    fn hashmap_mixed_ratios_pinned() {
        let spec = WorkloadSpec::hashmap_mixed(11, 1, 20_000, KeyDist::Uniform);
        let ops = &spec.generate(&ks())[0];
        let count = |f: fn(&Op) -> bool| ops.iter().filter(|o| f(o)).count();
        let reads = count(|o| matches!(o, Op::Read(_)));
        let inserts = count(|o| matches!(o, Op::Insert(..)));
        let removes = count(|o| matches!(o, Op::Remove(_)));
        let updates = count(|o| matches!(o, Op::Update(..)));
        assert_eq!(reads + inserts + removes + updates, 20_000, "point ops only");
        assert!((11_000..13_000).contains(&reads), "reads={reads}");
        assert!((3_000..5_000).contains(&inserts), "inserts={inserts}");
        assert!((1_500..2_500).contains(&removes), "removes={removes}");
        assert!((1_500..2_500).contains(&updates), "updates={updates}");
    }

    #[test]
    fn extract_free_mixes_unchanged_by_extract_arm() {
        // The extract branch must not consume RNG draws for mixes whose
        // other percentages already sum to 100.
        let spec = WorkloadSpec::ycsb_c(7, 2, 200);
        assert_eq!(spec.mix.extract, 0);
        for stream in spec.generate(&ks()) {
            assert!(stream.iter().all(|op| !matches!(op, Op::ExtractMin)));
        }
    }

    #[test]
    #[should_panic]
    fn pqueue_mix_must_sum_to_100() {
        let _ = Mix::pqueue(60, 60);
    }

    #[test]
    fn sensitivity_suite_matches_paper() {
        let labels: Vec<String> = Mix::sensitivity_suite().iter().map(|m| m.label()).collect();
        assert_eq!(labels, ["100-0-0", "90-5-5", "70-15-15", "50-25-25"]);
    }
}
