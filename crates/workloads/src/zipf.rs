//! Zipfian request distribution, following the YCSB generator
//! (Gray et al.'s "Quickly generating billion-record synthetic databases"
//! rejection-free method) with the standard YCSB constant θ = 0.99.
//!
//! [`Zipfian`] returns *ranks* in `[0, n)` where rank 0 is the most popular.
//! [`ScrambledZipfian`] hashes ranks so the popular items are spread across
//! the key space — this is what YCSB-C applies to its key universe.

use crate::rng::{fnv64, Rng};

/// YCSB default skew.
pub const YCSB_THETA: f64 = 0.99;

/// Zipfian rank generator over `n` items.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zeta_n: f64,
    eta: f64,
    zeta2: f64,
}

fn zeta(n: u64, theta: f64) -> f64 {
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    sum
}

impl Zipfian {
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n >= 1);
        assert!((0.0..1.0).contains(&theta), "theta must be in [0,1)");
        let zeta_n = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zeta_n);
        Zipfian { n, theta, alpha, zeta_n, eta, zeta2 }
    }

    pub fn ycsb(n: u64) -> Self {
        Self::new(n, YCSB_THETA)
    }

    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draw a rank in `[0, n)`; rank 0 is hottest.
    pub fn next_rank(&self, rng: &mut Rng) -> u64 {
        let u = rng.unit_f64();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Theoretical probability of rank `i` (for tests).
    pub fn prob(&self, rank: u64) -> f64 {
        1.0 / ((rank + 1) as f64).powf(self.theta) / self.zeta_n
    }

    /// The ζ(2,θ) constant (exposed for tests).
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

/// Zipfian ranks scrambled over `[0, n)` by an FNV hash, as in YCSB's
/// `ScrambledZipfianGenerator`: item popularity is zipfian but popular items
/// sit at hashed (spread-out) positions.
#[derive(Debug, Clone)]
pub struct ScrambledZipfian {
    inner: Zipfian,
}

impl ScrambledZipfian {
    pub fn ycsb(n: u64) -> Self {
        ScrambledZipfian { inner: Zipfian::ycsb(n) }
    }

    /// Scrambled zipfian with an explicit skew parameter (θ = 0 uniform …
    /// θ → 1 extremely skewed). Used for skew-sensitivity studies (§7's
    /// "highly skewed workloads" observation).
    pub fn with_theta(n: u64, theta: f64) -> Self {
        ScrambledZipfian { inner: Zipfian::new(n, theta) }
    }

    /// Draw a scrambled item index in `[0, n)`.
    pub fn next_index(&self, rng: &mut Rng) -> u64 {
        let rank = self.inner.next_rank(rng);
        fnv64(rank) % self.inner.n
    }

    pub fn n(&self) -> u64 {
        self.inner.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_in_range() {
        let z = Zipfian::ycsb(1000);
        let mut r = Rng::new(1);
        for _ in 0..50_000 {
            assert!(z.next_rank(&mut r) < 1000);
        }
    }

    #[test]
    fn rank0_frequency_matches_theory() {
        let z = Zipfian::ycsb(1000);
        let mut r = Rng::new(2);
        let n = 200_000;
        let hits = (0..n).filter(|_| z.next_rank(&mut r) == 0).count();
        let expect = z.prob(0) * n as f64;
        let got = hits as f64;
        assert!((got - expect).abs() < expect * 0.1, "rank0: got {got}, expected ~{expect}");
    }

    #[test]
    fn skew_orders_popularity() {
        let z = Zipfian::ycsb(100);
        let mut r = Rng::new(3);
        let mut counts = [0u32; 100];
        for _ in 0..200_000 {
            counts[z.next_rank(&mut r) as usize] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn theta_zero_is_uniformish() {
        let z = Zipfian::new(10, 0.0);
        let mut r = Rng::new(4);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[z.next_rank(&mut r) as usize] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "bucket {c}");
        }
    }

    #[test]
    fn scrambled_spreads_hot_items() {
        let z = ScrambledZipfian::ycsb(1 << 16);
        let mut r = Rng::new(5);
        let mut seen_high = false;
        let mut seen_low = false;
        for _ in 0..10_000 {
            let idx = z.next_index(&mut r);
            if idx > (1 << 15) {
                seen_high = true;
            }
            if idx < (1 << 15) {
                seen_low = true;
            }
        }
        assert!(seen_high && seen_low, "hot items should land across the space");
    }

    #[test]
    fn scrambled_still_skewed() {
        // The single hottest scrambled index should appear far more often
        // than the uniform expectation.
        let n = 1 << 12;
        let z = ScrambledZipfian::ycsb(n);
        let mut r = Rng::new(6);
        let mut counts = vec![0u32; n as usize];
        let draws = 100_000;
        for _ in 0..draws {
            counts[z.next_index(&mut r) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let uniform = draws / n as u32;
        assert!(max > uniform * 20, "max={max}, uniform={uniform}");
    }

    #[test]
    fn deterministic_given_seed() {
        let z = ScrambledZipfian::ycsb(1 << 20);
        let mut a = Rng::new(77);
        let mut b = Rng::new(77);
        for _ in 0..1000 {
            assert_eq!(z.next_index(&mut a), z.next_index(&mut b));
        }
    }
}
