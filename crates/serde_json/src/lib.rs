//! Offline stand-in for the [`serde_json`](https://crates.io/crates/serde_json)
//! crate: serializes the vendored `serde::Value` tree to JSON text and
//! parses JSON text back.
//!
//! Numbers keep integer/float identity where JSON allows: integers print
//! without a decimal point and parse back as integers; floats print with
//! Rust's shortest-roundtrip formatting, so every finite `f64` survives a
//! `to_string`/`from_str` round trip bit-exactly (floats whose shortest
//! form is integral, e.g. `2.0`, come back as integers — the vendored
//! `f64::from_value` accepts those).

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value())?;
    Ok(out)
}

/// Serialize `value` to an indented JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0)?;
    Ok(out)
}

/// Parse a JSON string into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&parse_value_str(s)?)
}

/// Parse a JSON string into the raw [`Value`] tree.
pub fn parse_value_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => write_float(out, *x)?,
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item)?;
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, val)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_value_pretty(out: &mut String, v: &Value, indent: usize) -> Result<(), Error> {
    fn pad(out: &mut String, n: usize) {
        for _ in 0..n {
            out.push_str("  ");
        }
    }
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, indent + 1);
                write_value_pretty(out, item, indent + 1)?;
            }
            out.push('\n');
            pad(out, indent);
            out.push(']');
            Ok(())
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, indent + 1);
                write_escaped(out, k);
                out.push_str(": ");
                write_value_pretty(out, val, indent + 1)?;
            }
            out.push('\n');
            pad(out, indent);
            out.push('}');
            Ok(())
        }
        other => write_value(out, other),
    }
}

fn write_float(out: &mut String, x: f64) -> Result<(), Error> {
    if !x.is_finite() {
        return Err(Error::msg("JSON cannot represent NaN or infinity"));
    }
    // Rust's `{}` is shortest-roundtrip; integral shortest forms (e.g. "2")
    // are valid JSON numbers and re-parse as integers, which the vendored
    // float Deserialize accepts.
    out.push_str(&format!("{x}"));
    Ok(())
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected character {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                if !self.eat_lit("\\u") {
                                    return Err(Error::msg("unpaired high surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::msg("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| Error::msg("invalid codepoint"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| Error::msg("invalid codepoint"))?
                            };
                            s.push(c);
                            // parse_hex4 leaves pos past the digits; skip the
                            // shared `pos += 1` below.
                            continue;
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "bad escape {:?}",
                                other.map(|c| c as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(rest)
                        .map_err(|_| Error::msg("invalid utf-8"))?
                        .chars()
                        .next()
                        .unwrap();
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::msg("bad \\u escape"))?;
        let n = u32::from_str_radix(hex, 16).map_err(|_| Error::msg("bad \\u escape"))?;
        self.pos += 4;
        Ok(n)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else if let Some(digits) = text.strip_prefix('-') {
            // Negative integer; normalize `-0` to UInt(0).
            let n = digits
                .parse::<u64>()
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))?;
            if n == 0 {
                Ok(Value::UInt(0))
            } else {
                i64::try_from(n)
                    .map(|v| Value::Int(-v))
                    .map_err(|_| Error::msg(format!("integer `{text}` out of range")))
            }
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&13.75f64).unwrap(), "13.75");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("hi \"there\"").unwrap(), r#""hi \"there\"""#);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(from_str::<f64>("13.75").unwrap(), 13.75);
        assert_eq!(from_str::<f64>("2").unwrap(), 2.0);
        assert_eq!(from_str::<String>(r#""a\nb""#).unwrap(), "a\nb");
    }

    #[test]
    fn float_shortest_form_roundtrips() {
        for x in [2.0f64, 13.75, 3.2, 0.99, 1e-9, 123456789.125, -16.0] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), x, "via {s}");
        }
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);
        assert_eq!(from_str::<Vec<u32>>("[ ]").unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn object_parse_preserves_order() {
        let v = parse_value_str(r#"{"b": 1, "a": {"x": [true, null]}}"#).unwrap();
        match &v {
            Value::Object(pairs) => {
                assert_eq!(pairs[0].0, "b");
                assert_eq!(pairs[1].0, "a");
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>(r#""é""#).unwrap(), "é");
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value_str("{").is_err());
        assert!(parse_value_str("[1,]").is_err());
        assert!(parse_value_str("12 34").is_err());
        assert!(parse_value_str("nul").is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = parse_value_str(r#"{"a": [1, 2], "b": {"c": "d"}, "e": []}"#).unwrap();
        let mut pretty = String::new();
        write_value_pretty(&mut pretty, &v, 0).unwrap();
        assert_eq!(parse_value_str(&pretty).unwrap(), v);
    }
}
