//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the small serde surface it actually uses. Instead of serde's
//! visitor-based zero-copy architecture, everything round-trips through a
//! self-describing [`Value`] tree: `Serialize` renders a type *to* a
//! `Value`, `Deserialize` rebuilds a type *from* one, and `serde_json`
//! converts `Value` to/from JSON text. The derive macros (re-exported from
//! `serde_derive`) cover the shapes this workspace derives on: structs with
//! named fields and enums with unit or struct variants, using serde's
//! standard externally-tagged enum representation.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing data tree — the interchange format between
/// [`Serialize`], [`Deserialize`], and `serde_json`.
///
/// Integers keep their signedness ([`Value::UInt`] vs [`Value::Int`]) so
/// that `u64` counters survive round-trips without passing through `f64`.
/// Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also the encoding of `Option::None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer (values ≥ 0 normalize to [`Value::UInt`]).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map of field name to value.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an [`Value::Object`]; errors if `self` is not an
    /// object or the field is absent.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::msg(format!("missing field `{name}`"))),
            other => Err(Error::msg(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Human-readable name of the value's variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error type shared by serialization, deserialization, and JSON parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Build an error from any displayable message.
    pub fn msg(message: impl fmt::Display) -> Self {
        Error { message: message.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Render `self` as a [`Value`] tree.
pub trait Serialize {
    /// Convert to the interchange [`Value`].
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Convert from the interchange [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::UInt(n) => n,
                    Value::Int(n) if n >= 0 => n as u64,
                    ref other => {
                        return Err(Error::msg(format!(
                            concat!("expected ", stringify!($t), ", found {}"),
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::msg(format!(
                        concat!("integer {} out of range for ", stringify!($t)),
                        n
                    ))
                })
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match *v {
                    Value::Int(n) => n,
                    Value::UInt(n) => i64::try_from(n).map_err(|_| {
                        Error::msg(format!("integer {n} out of range for i64"))
                    })?,
                    ref other => {
                        return Err(Error::msg(format!(
                            concat!("expected ", stringify!($t), ", found {}"),
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::msg(format!(
                        concat!("integer {} out of range for ", stringify!($t)),
                        n
                    ))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::Float(x) => Ok(x as $t),
                    // JSON has one number type: `2.0` prints as `2` and
                    // parses back as an integer, so accept integers here.
                    Value::UInt(n) => Ok(n as $t),
                    Value::Int(n) => Ok(n as $t),
                    ref other => Err(Error::msg(format!(
                        concat!("expected ", stringify!($t), ", found {}"),
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            ref other => Err(Error::msg(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(Deserialize::from_value).collect(),
            other => Err(Error::msg(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_signedness_preserved() {
        assert_eq!(7u64.to_value(), Value::UInt(7));
        assert_eq!((-7i32).to_value(), Value::Int(-7));
        assert_eq!(7i32.to_value(), Value::UInt(7));
        assert_eq!(u64::from_value(&Value::UInt(u64::MAX)).unwrap(), u64::MAX);
        assert!(u8::from_value(&Value::UInt(300)).is_err());
    }

    #[test]
    fn float_accepts_integer_values() {
        assert_eq!(f64::from_value(&Value::UInt(2)).unwrap(), 2.0);
        assert_eq!(f64::from_value(&Value::Float(13.75)).unwrap(), 13.75);
    }

    #[test]
    fn option_roundtrip() {
        assert_eq!(Some(3u32).to_value(), Value::UInt(3));
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::UInt(3)).unwrap(), Some(3));
    }

    #[test]
    fn object_field_lookup() {
        let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(v.field("a").unwrap(), &Value::UInt(1));
        assert!(v.field("b").is_err());
        assert!(Value::Null.field("a").is_err());
    }
}
