//! Run the figure/table harnesses from one binary:
//!
//! ```text
//! cargo run --release -p hybrids-bench --bin figures -- [--scale smoke|ci|scaled|paper] [--shards N] [--policy fixed|adaptive] [--backend sim] [fig5 fig6 fig7 fig8 table2 fig4 newstructs trace | all]
//! ```
//!
//! Each experiment is the same code `cargo bench` runs (the bench targets
//! in `crates/bench/benches/`); this binary just makes targeted, scaled
//! runs convenient.

use std::process::Command;

fn main() {
    let mut scale = None;
    let mut shards = None;
    let mut policy = None;
    let mut backend = None;
    let mut figs: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => scale = args.next(),
            "--shards" => {
                let n = args.next().expect("--shards needs a value");
                let _: usize = n.parse().expect("--shards must be an integer");
                shards = Some(n);
            }
            "--policy" => {
                let p = args.next().expect("--policy needs a value");
                nmp_sim::Policy::parse(&p).expect("--policy must be 'fixed' or 'adaptive'");
                policy = Some(p);
            }
            "--backend" => {
                let b = args.next().expect("--backend needs a value");
                let kind =
                    nmp_sim::BackendKind::parse(&b).expect("--backend must be 'sim' or 'native'");
                assert_eq!(
                    kind,
                    nmp_sim::BackendKind::Sim,
                    "the figure harness is cycle-accurate and simulator-only; native-backend \
                     serve throughput is measured by hybrids-loadgen against hybrids-server \
                     (BENCH_9.json)"
                );
                backend = Some(b);
            }
            other => figs.push(other.to_string()),
        }
    }
    if figs.is_empty() || figs.iter().any(|f| f == "all") {
        figs = [
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "table2",
            "ablations",
            "ycsbe",
            "newstructs",
            "trace",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    let bench_name = |f: &str| {
        match f {
        "fig4" => "fig4_blocking_trace",
        "fig5" => "fig5_skiplist_baseline",
        "fig6" => "fig6_btree_baseline",
        "fig7" => "fig7_skiplist_sensitivity",
        "fig8" | "fig9" => "fig8_btree_sensitivity",
        "table2" => "table2_offload_delays",
        "ablations" => "ablations",
        "ycsbe" | "ycsb_e" => "ycsb_e_scans",
        "newstructs" | "hashmap" | "pqueue" => "new_structures",
        // Not a bench target: the trace-report bin (cycle attribution +
        // Perfetto export); handled specially in the loop below.
        "trace" | "trace-report" => "trace",
        other => panic!(
            "unknown experiment '{other}' (fig4/fig5/fig6/fig7/fig8/fig9/table2/ablations/ycsbe/newstructs/trace)"
        ),
    }
    };
    for f in &figs {
        let mut cmd = Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".into()));
        let name = bench_name(f);
        if name == "trace" {
            cmd.args(["run", "--release", "-p", "hybrids-bench", "--bin", "trace-report"]);
        } else {
            cmd.args(["bench", "-p", "hybrids-bench", "--bench", name]);
        }
        if let Some(s) = &scale {
            cmd.env("HYBRIDS_SCALE", s);
        }
        if let Some(n) = &shards {
            cmd.env("HYBRIDS_SHARDS", n);
        }
        if let Some(p) = &policy {
            cmd.env("HYBRIDS_POLICY", p);
        }
        if let Some(b) = &backend {
            cmd.env("HYBRIDS_BACKEND", b);
        }
        eprintln!("== running {f} ==");
        let status = cmd.status().expect("failed to spawn cargo bench");
        assert!(status.success(), "experiment {f} failed");
    }
}
