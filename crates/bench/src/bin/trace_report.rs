//! Cycle-attribution report over the six conformance structures.
//!
//! Runs each structure at the scale selected by `HYBRIDS_SCALE` with a
//! tracer attached, prints a per-structure attribution table splitting
//! end-to-end op latency into host / post / queueing / NMP-exec / drain
//! components, and exports one Chrome-trace JSON per structure under
//! `results/trace/` (load them at <https://ui.perfetto.dev>). Each export
//! is re-parsed with the vendored JSON parser as a self-check.

#[cfg(feature = "trace")]
fn main() {
    report::run();
}

#[cfg(not(feature = "trace"))]
fn main() {
    eprintln!("trace-report requires the `trace` feature (enabled by default);");
    eprintln!("rebuild without `--no-default-features` or with `--features trace`.");
    std::process::exit(2);
}

#[cfg(feature = "trace")]
mod report {
    use std::sync::Arc;

    use hybrids::btree::{HostBTree, HybridBTree};
    use hybrids::driver::{run_index, RunResult, RunSpec};
    use hybrids::hashmap::HybridHashMap;
    use hybrids::pqueue::HybridPqueue;
    use hybrids::skiplist::{hybrid::split_for, HybridSkipList, NmpSkipList};
    use hybrids_bench::{
        hashmap_workload, initial_pairs, pqueue_workload, sensitivity, Scale, SEED,
    };
    use nmp_sim::trace::{PhaseTotals, TraceSink, Tracer};
    use nmp_sim::Machine;
    use serde::Value;
    use workloads::{InsertDist, KeyDist, Mix, WorkloadSpec};

    struct Row {
        name: &'static str,
        result: RunResult,
        totals: PhaseTotals,
        events: u64,
        json_bytes: usize,
    }

    fn spec(scale: &Scale, workload: WorkloadSpec) -> RunSpec {
        RunSpec {
            workload,
            warmup_per_thread: scale.warmup_per_thread,
            inflight: 1,
            app_footprint_lines: 0,
        }
    }

    fn export(name: &'static str, scale: &Scale, tracer: &Tracer) -> usize {
        let dir = std::env::var("HYBRIDS_RESULTS_DIR").unwrap_or_else(|_| {
            format!("{}/results", env!("CARGO_MANIFEST_DIR").trim_end_matches("/crates/bench"))
        });
        let dir = format!("{dir}/trace");
        std::fs::create_dir_all(&dir).expect("create results/trace");
        let json = TraceSink::chrome_json(tracer);
        // Self-check: the export must re-parse as JSON with a non-empty
        // traceEvents array (the same check the CI smoke step performs).
        let v = serde_json::parse_value_str(&json).expect("exported trace must parse");
        match v.field("traceEvents").expect("traceEvents field") {
            Value::Array(items) => {
                assert!(!items.is_empty(), "{name}: exported trace is empty")
            }
            _ => panic!("{name}: traceEvents is not an array"),
        }
        let path = format!("{dir}/{name}.{}.json", scale.name);
        std::fs::write(&path, &json).expect("write trace json");
        eprintln!("[trace-report] wrote {path} ({} bytes)", json.len());
        json.len()
    }

    fn run_one(
        name: &'static str,
        scale: &Scale,
        machine: &Arc<Machine>,
        tracer: &Tracer,
        result: RunResult,
    ) -> Row {
        let _ = machine;
        let totals = tracer.phase_totals_all();
        let events = tracer.summary().events;
        let json_bytes = export(name, scale, tracer);
        Row { name, result, totals, events, json_bytes }
    }

    pub fn run() {
        let mut scale = Scale::from_env();
        // `--shards N` overrides the engine shard knob (0 = per-vault,
        // 1 = legacy loop); `--policy fixed|adaptive` selects the offload
        // policy — both for this report only.
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--shards" => {
                    let n = args.next().expect("--shards needs a value");
                    scale = scale.with_shards(n.parse().expect("--shards must be an integer"));
                }
                "--policy" => {
                    let p = args.next().expect("--policy needs a value");
                    scale = scale.with_policy(
                        nmp_sim::Policy::parse(&p).expect("--policy must be 'fixed' or 'adaptive'"),
                    );
                }
                "--backend" => {
                    let b = args.next().expect("--backend needs a value");
                    scale = scale.with_backend(
                        nmp_sim::BackendKind::parse(&b)
                            .expect("--backend must be 'sim' or 'native'"),
                    );
                }
                other => panic!(
                    "unknown trace-report flag `{other}` \
                     (supported: --shards N, --policy fixed|adaptive, --backend sim|native)"
                ),
            }
        }
        eprintln!(
            "[trace-report] engine vault shards: {}, policy: {}, backend: {}",
            scale.cfg.resolved_vault_shards(),
            scale.cfg.policy.label(),
            scale.backend.label()
        );
        let threads = scale.cfg.host_cores as u32;
        let map_mix =
            sensitivity(&scale, Mix::read_insert_remove(50, 25, 25), InsertDist::UniformGap);
        let mut rows = Vec::new();

        // nmp-skiplist: whole structure NMP-resident.
        {
            let ks = scale.skiplist_keyspace();
            let machine = Machine::new(scale.cfg.clone());
            let tracer = machine.attach_tracer();
            let per_part = (ks.total_initial() / ks.parts).max(2) as u64;
            let levels = 64 - (per_part - 1).leading_zeros();
            let sl = NmpSkipList::new(Arc::clone(&machine), ks, levels, SEED, 1);
            sl.populate(initial_pairs(&ks));
            let r = run_index(&machine, &sl, &ks, &spec(&scale, map_mix));
            rows.push(run_one("nmp-skiplist", &scale, &machine, &tracer, r));
        }
        // hybrid-skiplist: host upper levels, NMP lower levels.
        {
            let ks = scale.skiplist_keyspace();
            let machine = Machine::new(scale.cfg.clone());
            let tracer = machine.attach_tracer();
            let (total, nh) = split_for(ks.total_initial() as u64, scale.cfg.l2.size_bytes as u64);
            let sl = HybridSkipList::new(Arc::clone(&machine), ks, total, nh, SEED, 1);
            sl.populate(initial_pairs(&ks));
            let r = run_index(&machine, &sl, &ks, &spec(&scale, map_mix));
            rows.push(run_one("hybrid-skiplist", &scale, &machine, &tracer, r));
        }
        // hybrid-btree and the host-only baseline.
        {
            let ks = scale.btree_keyspace();
            let machine = Machine::new(scale.cfg.clone());
            let tracer = machine.attach_tracer();
            let pairs = initial_pairs(&ks);
            let t = HybridBTree::new(Arc::clone(&machine), &pairs, 0.5, 1);
            let r = run_index(&machine, &t, &ks, &spec(&scale, map_mix));
            rows.push(run_one("hybrid-btree", &scale, &machine, &tracer, r));
        }
        {
            let ks = scale.btree_keyspace();
            let machine = Machine::new(scale.cfg.clone());
            let tracer = machine.attach_tracer();
            let pairs = initial_pairs(&ks);
            let t = HostBTree::new(Arc::clone(&machine), &pairs, 0.5);
            let r = run_index(&machine, &t, &ks, &spec(&scale, map_mix));
            rows.push(run_one("host-btree", &scale, &machine, &tracer, r));
        }
        // hybrid-hashmap: LLC-resident bucket directory, NMP chains.
        {
            let ks = scale.skiplist_keyspace();
            let machine = Machine::new(scale.cfg.clone());
            let tracer = machine.attach_tracer();
            let parts = ks.parts;
            let max_buckets = (scale.cfg.l2.size_bytes / 8 / parts).max(1) * parts;
            let buckets = (ks.total_initial() / 4 / parts).max(1) * parts;
            let hm = HybridHashMap::new(Arc::clone(&machine), buckets.min(max_buckets), SEED, 1);
            hm.populate(initial_pairs(&ks));
            let wl = hashmap_workload(&scale, KeyDist::Uniform);
            let r = run_index(&machine, &hm, &ks, &spec(&scale, wl));
            rows.push(run_one("hybrid-hashmap", &scale, &machine, &tracer, r));
        }
        // hybrid-pqueue: cached per-partition minima, NMP runs.
        {
            let ks = scale.skiplist_keyspace();
            let machine = Machine::new(scale.cfg.clone());
            let tracer = machine.attach_tracer();
            let per_part = (ks.total_initial() / ks.parts).max(2) as u64;
            let levels = 64 - (per_part - 1).leading_zeros();
            let pq = HybridPqueue::new(Arc::clone(&machine), ks, levels, SEED, 1);
            pq.populate(&initial_pairs(&ks));
            let wl = pqueue_workload(&scale, 50);
            let r = run_index(&machine, &pq, &ks, &spec(&scale, wl));
            let stale = machine.mem().snapshot().offload.pq_stale_total();
            eprintln!("[trace-report] pqueue stale-empty probes: {stale}");
            rows.push(run_one("hybrid-pqueue", &scale, &machine, &tracer, r));
        }

        print_table(&scale, threads, &rows);
    }

    fn print_table(scale: &Scale, threads: u32, rows: &[Row]) {
        println!("\n== cycle attribution ({} scale, {threads} host threads) ==", scale.name);
        println!(
            "  {:<16} {:>8} {:>10} {:>7} {:>7} {:>7} {:>7} {:>7}  {:>9} {:>9} {:>9}",
            "structure",
            "ops",
            "mean_cyc",
            "host%",
            "post%",
            "queue%",
            "exec%",
            "drain%",
            "p50",
            "p95",
            "p99",
        );
        for row in rows {
            let t = &row.totals;
            if t.ops == 0 {
                // Host-only structures never enter the offload runtime: the
                // whole op is host computation by construction.
                println!(
                    "  {:<16} {:>8} {:>10.1} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%  {:>9.0} {:>9.0} {:>9.0}",
                    row.name,
                    row.result.measured_ops,
                    row.result.cycles as f64 * row.result.threads as f64
                        / row.result.measured_ops as f64,
                    100.0, 0.0, 0.0, 0.0, 0.0,
                    row.result.lat_p50_cycles,
                    row.result.lat_p95_cycles,
                    row.result.lat_p99_cycles,
                );
                continue;
            }
            let pct = |x: u64| 100.0 * x as f64 / (t.total.max(1)) as f64;
            // `wait` tiles into queue + exec + drain; any wait not covered
            // by an observed NMP leg (e.g. host-side polling overshoot)
            // stays in the drain column's remainder.
            let rem = t.wait.saturating_sub(t.queue + t.exec + t.drain);
            println!(
                "  {:<16} {:>8} {:>10.1} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%  {:>9.0} {:>9.0} {:>9.0}",
                row.name,
                t.ops,
                t.total as f64 / t.ops as f64,
                pct(t.host),
                pct(t.post),
                pct(t.queue),
                pct(t.exec),
                pct(t.drain + rem),
                row.result.lat_p50_cycles,
                row.result.lat_p95_cycles,
                row.result.lat_p99_cycles,
            );
        }
        println!();
        for row in rows {
            println!(
                "  {:<16} {:>8} trace events, {:>9} B exported",
                row.name, row.events, row.json_bytes
            );
        }
        println!("\n  load the JSON files under results/trace/ at https://ui.perfetto.dev");
    }
}
