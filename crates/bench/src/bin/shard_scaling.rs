//! Simulator-throughput scaling across engine shard counts.
//!
//! Runs the six-structure conformance workload (nmp-skiplist,
//! hybrid-skiplist, hybrid-btree, host-btree, hybrid-hashmap,
//! hybrid-pqueue) at shards ∈ {1, 2, 4, 8} (clamped to the partition
//! count) and records `sim_cycles_per_sec` — simulated cycles advanced per
//! wall-clock second, the simulator's own speed — per structure and in
//! aggregate, plus each point's speedup over the shards=1 legacy engine.
//!
//! Output goes to `BENCH_7.json` at the repo root (override with
//! `HYBRIDS_BENCH_OUT`); the schema below is the repo's perf-trajectory
//! record that later PRs append alongside.
//!
//! ```text
//! cargo run --release -p hybrids-bench --bin shard-scaling
//! HYBRIDS_SCALE=smoke cargo run --release -p hybrids-bench --bin shard-scaling  # CI schema check
//! ```

use hybrids_bench::{
    hashmap_workload, pqueue_workload, run_btree, run_hashmap, run_pqueue, run_skiplist,
    sensitivity, Scale, Variant,
};
use serde::Serialize;
use workloads::{InsertDist, Mix};

/// One structure's throughput at one shard count.
#[derive(Debug, Clone, Serialize)]
struct StructurePoint {
    structure: String,
    sim_cycles_per_sec: f64,
    sim_cycles: u64,
    wall_ms: f64,
}

/// All six structures at one shard count.
#[derive(Debug, Clone, Serialize)]
struct ShardPoint {
    shards: u32,
    /// Aggregate simulator speed: Σ simulated cycles / Σ wall seconds.
    sim_cycles_per_sec: f64,
    /// Aggregate speed relative to the shards=1 point.
    speedup_vs_shards1: f64,
    structures: Vec<StructurePoint>,
}

/// The BENCH_7.json payload.
#[derive(Debug, Clone, Serialize)]
struct BenchFile {
    bench: String,
    pr: u32,
    metric: String,
    scale: String,
    workload: String,
    points: Vec<ShardPoint>,
}

fn run_point(scale: &Scale) -> Vec<StructurePoint> {
    let map_mix = sensitivity(scale, Mix::read_insert_remove(50, 25, 25), InsertDist::UniformGap);
    let runs: Vec<(&str, hybrids::driver::RunResult)> = vec![
        ("nmp-skiplist", run_skiplist(scale, Variant::NmpBased, map_mix)),
        ("hybrid-skiplist", run_skiplist(scale, Variant::HybridBlocking, map_mix)),
        ("hybrid-btree", run_btree(scale, Variant::HybridBtBlocking, map_mix)),
        ("host-btree", run_btree(scale, Variant::HostOnly, map_mix)),
        (
            "hybrid-hashmap",
            run_hashmap(
                scale,
                Variant::HashMapBlocking,
                hashmap_workload(scale, workloads::KeyDist::Uniform),
            ),
        ),
        ("hybrid-pqueue", run_pqueue(scale, Variant::PqueueBlocking, pqueue_workload(scale, 50))),
    ];
    runs.into_iter()
        .map(|(name, r)| StructurePoint {
            structure: name.to_string(),
            sim_cycles_per_sec: r.sim_cycles_per_sec,
            sim_cycles: r.cycles,
            wall_ms: r.wall_ms,
        })
        .collect()
}

fn main() {
    let base = Scale::from_env();
    let parts = base.cfg.nmp_partitions();
    let mut counts: Vec<usize> = [1usize, 2, 4, 8].iter().map(|&n| n.min(parts)).collect();
    counts.dedup();
    println!(
        "shard scaling: six-structure workload at shards {:?} (scale = {}, {} partitions)",
        counts, base.name, parts
    );
    println!("{:<8} {:>18} {:>10}", "shards", "sim cycles/sec", "speedup");

    let mut points: Vec<ShardPoint> = Vec::new();
    let mut base_speed = 0.0f64;
    for &n in &counts {
        let scale = base.clone().with_shards(n);
        let structures = run_point(&scale);
        let total_cycles: u64 = structures.iter().map(|s| s.sim_cycles).sum();
        let total_wall_ms: f64 = structures.iter().map(|s| s.wall_ms).sum();
        let agg = total_cycles as f64 / (total_wall_ms / 1000.0).max(1e-9);
        if n == 1 {
            base_speed = agg;
        }
        let speedup = if base_speed > 0.0 { agg / base_speed } else { 0.0 };
        println!("{:<8} {:>18.0} {:>9.2}x", n, agg, speedup);
        points.push(ShardPoint {
            shards: n as u32,
            sim_cycles_per_sec: agg,
            speedup_vs_shards1: speedup,
            structures,
        });
    }

    let payload = BenchFile {
        bench: "shard_scaling".to_string(),
        pr: 7,
        metric: "sim_cycles_per_sec".to_string(),
        scale: base.name.to_string(),
        workload: "six-structure-conformance".to_string(),
        points,
    };
    let path = std::env::var("HYBRIDS_BENCH_OUT").unwrap_or_else(|_| {
        format!("{}/BENCH_7.json", env!("CARGO_MANIFEST_DIR").trim_end_matches("/crates/bench"))
    });
    std::fs::write(&path, serde_json::to_string(&payload).expect("serialize bench payload"))
        .expect("write BENCH json");
    println!("[shard-scaling] wrote {path}");
}
