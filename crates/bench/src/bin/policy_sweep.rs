//! Fixed-vs-adaptive offload-policy sweep (the PR 8 acceptance artifact).
//!
//! For the two policy-sensitive workloads — the zipfian hash map (hot keys
//! coalesce) and the insert/extract priority queue (idle tuning) — this
//! runs every hand-tuned fixed configuration (`inflight` ∈ {1, 2, 4}) and
//! one `Policy::Adaptive` run, then repeats the adaptive run twice each at
//! engine shards 1 and 4 and asserts all four stats fingerprints are
//! byte-identical (adaptivity must be a pure function of simulated state).
//!
//! Output goes to `BENCH_8.json` at the repo root (override with
//! `HYBRIDS_BENCH_OUT`):
//!
//! ```text
//! cargo run --release -p hybrids-bench --bin policy-sweep
//! HYBRIDS_SCALE=smoke cargo run --release -p hybrids-bench --bin policy-sweep  # CI schema check
//! ```

use hybrids::driver::RunResult;
use hybrids_bench::{hashmap_workload, pqueue_workload, run_hashmap, run_pqueue, Scale, Variant};
use nmp_sim::Policy;
use serde::Serialize;
use workloads::KeyDist;

/// One (workload, policy, inflight) throughput measurement.
#[derive(Debug, Clone, Serialize)]
struct Point {
    workload: String,
    policy: String,
    inflight: u32,
    mops: f64,
    offload_coalesced: u64,
    offload_mean_batch: f64,
    cycles: u64,
}

/// Per-workload adaptive-vs-best-fixed verdict.
#[derive(Debug, Clone, Serialize)]
struct Verdict {
    workload: String,
    best_fixed_mops: f64,
    best_fixed_inflight: u32,
    adaptive_mops: f64,
    adaptive_vs_best_fixed: f64,
}

/// Adaptive-run determinism evidence: repeated runs at each shard count
/// must produce byte-identical stats fingerprints.
#[derive(Debug, Clone, Serialize)]
struct Determinism {
    shards: Vec<u32>,
    runs_per_shard_count: u32,
    byte_identical: bool,
}

/// The BENCH_8.json payload.
#[derive(Debug, Clone, Serialize)]
struct BenchFile {
    bench: String,
    pr: u32,
    metric: String,
    scale: String,
    workload: String,
    points: Vec<Point>,
    summary: Vec<Verdict>,
    determinism: Determinism,
}

const FIXED_INFLIGHTS: [usize; 3] = [1, 2, 4];
const ADAPTIVE_INFLIGHT: usize = 4;

fn run_workload(scale: &Scale, name: &str, inflight: usize) -> RunResult {
    match name {
        "hashmap-zipfian" => {
            let v = if inflight == 1 {
                Variant::HashMapBlocking
            } else {
                Variant::HashMapNonblocking(inflight)
            };
            run_hashmap(scale, v, hashmap_workload(scale, KeyDist::Zipfian))
        }
        "pqueue-mixed" => {
            let v = if inflight == 1 {
                Variant::PqueueBlocking
            } else {
                Variant::PqueueNonblocking(inflight)
            };
            run_pqueue(scale, v, pqueue_workload(scale, 50))
        }
        other => panic!("unknown sweep workload {other}"),
    }
}

/// Simulated-state fingerprint of a run: every counter the machine
/// produced, plus the measured window. Wall-clock fields live outside
/// `stats`, so two identical simulations serialize identically.
fn fingerprint(r: &RunResult) -> String {
    format!(
        "cycles={} ok={} stats={}",
        r.cycles,
        r.succeeded_ops,
        serde_json::to_string(&r.stats).expect("stats serialize")
    )
}

fn point(scale: &Scale, workload: &str, inflight: usize, r: &RunResult) -> Point {
    Point {
        workload: workload.to_string(),
        policy: scale.cfg.policy.label().to_string(),
        inflight: inflight as u32,
        mops: r.mops,
        offload_coalesced: r.offload_coalesced,
        offload_mean_batch: r.offload_mean_batch,
        cycles: r.cycles,
    }
}

fn main() {
    let base = Scale::from_env();
    let workloads = ["hashmap-zipfian", "pqueue-mixed"];
    let mut points: Vec<Point> = Vec::new();
    let mut summary: Vec<Verdict> = Vec::new();
    let mut deterministic = true;

    for wl in workloads {
        println!("== {wl} (scale = {}) ==", base.name);
        let mut best_fixed = (0usize, f64::MIN);
        for &k in &FIXED_INFLIGHTS {
            let scale = base.clone().with_policy(Policy::Fixed);
            let r = run_workload(&scale, wl, k);
            println!("  fixed    inflight={k} -> {:.4} Mops", r.mops);
            if r.mops > best_fixed.1 {
                best_fixed = (k, r.mops);
            }
            points.push(point(&scale, wl, k, &r));
        }

        let scale = base.clone().with_policy(Policy::Adaptive);
        let r = run_workload(&scale, wl, ADAPTIVE_INFLIGHT);
        println!(
            "  adaptive inflight<={ADAPTIVE_INFLIGHT} -> {:.4} Mops ({} coalesced)",
            r.mops, r.offload_coalesced
        );
        points.push(point(&scale, wl, ADAPTIVE_INFLIGHT, &r));
        summary.push(Verdict {
            workload: wl.to_string(),
            best_fixed_mops: best_fixed.1,
            best_fixed_inflight: best_fixed.0 as u32,
            adaptive_mops: r.mops,
            adaptive_vs_best_fixed: r.mops / best_fixed.1,
        });

        // Determinism: two adaptive runs at shards=1 and two at shards=4
        // must agree byte-for-byte on every simulated counter — across
        // repeats *and* across shard counts.
        let mut fps: Vec<String> = Vec::new();
        for shards in [1usize, 4] {
            for _ in 0..2 {
                let s = base.clone().with_policy(Policy::Adaptive).with_shards(shards);
                fps.push(fingerprint(&run_workload(&s, wl, ADAPTIVE_INFLIGHT)));
            }
        }
        let ok = fps.windows(2).all(|w| w[0] == w[1]);
        println!("  adaptive determinism (2x shards=1, 2x shards=4): {}", ok);
        deterministic &= ok;
    }

    for v in &summary {
        println!(
            "{}: adaptive {:.4} vs best fixed {:.4} (inflight={}) -> {:.3}x",
            v.workload,
            v.adaptive_mops,
            v.best_fixed_mops,
            v.best_fixed_inflight,
            v.adaptive_vs_best_fixed
        );
    }
    assert!(deterministic, "adaptive runs must be byte-identical across repeats and shards");

    let payload = BenchFile {
        bench: "policy_sweep".to_string(),
        pr: 8,
        metric: "mops".to_string(),
        scale: base.name.to_string(),
        workload: "hashmap-zipfian+pqueue-mixed".to_string(),
        points,
        summary,
        determinism: Determinism {
            shards: vec![1, 4],
            runs_per_shard_count: 2,
            byte_identical: deterministic,
        },
    };
    let path = std::env::var("HYBRIDS_BENCH_OUT").unwrap_or_else(|_| {
        format!("{}/BENCH_8.json", env!("CARGO_MANIFEST_DIR").trim_end_matches("/crates/bench"))
    });
    std::fs::write(&path, serde_json::to_string(&payload).expect("serialize bench payload"))
        .expect("write BENCH json");
    println!("[policy-sweep] wrote {path}");
}
