//! Shared experiment harness for regenerating every table and figure of the
//! HybriDS evaluation (§5). The `benches/` targets (run by `cargo bench`)
//! call into this library; each prints paper-style rows and writes CSV /
//! JSONL records under `results/`.
//!
//! ## Scales
//!
//! Cycle-level simulation is slow, so experiments run at one of three
//! scales selected by the `HYBRIDS_SCALE` environment variable:
//!
//! * `ci` (default): a further-scaled machine so `cargo bench` finishes in
//!   minutes — every *ratio* of the paper's setup (structure : LLC,
//!   host-portion : LLC) is preserved.
//! * `scaled`: the DESIGN.md default (LLC/16, 2^18-key skiplist).
//! * `paper`: Table 1 verbatim (1 MB LLC, 2^22-key skiplist, ~30M-key
//!   B+ tree). Expect very long runs.
//!
//! `HYBRIDS_OPS` overrides measured operations per thread.

use std::fmt::Write as _;
use std::sync::Arc;

use hybrids::api::SimIndex;
use hybrids::btree::{HostBTree, HybridBTree};
use hybrids::driver::{run_index, RunResult, RunSpec};
use hybrids::hashmap::HybridHashMap;
use hybrids::pqueue::HybridPqueue;
use hybrids::skiplist::{
    hybrid::split_for, lockfree::NodeLayout, HybridSkipList, LockFreeSkipList, NmpSkipList,
};
use nmp_sim::{BackendKind, Config, Machine, Policy};
use serde::Serialize;
use workloads::{InsertDist, Key, KeyDist, KeySpace, Mix, Op, Value, WorkloadSpec};

pub const SEED: u64 = 0x5EED_2022;

/// Experiment scale: machine config + structure sizes + op counts.
#[derive(Debug, Clone)]
pub struct Scale {
    pub name: &'static str,
    pub cfg: Config,
    /// Initial skiplist keys (power of two).
    pub skiplist_keys: u32,
    /// Initial B+ tree keys (rounded down to a partition multiple).
    pub btree_keys: u32,
    pub ops_per_thread: u32,
    pub warmup_per_thread: u32,
    /// OLTP application traffic around each B+ tree operation (cache lines
    /// of row data per op; see `RunSpec::app_footprint_lines`). The paper's
    /// full-system B+ tree measurements include such traffic; the skiplist
    /// experiments run as pure microbenchmarks (0).
    pub btree_footprint_lines: u32,
    /// Memory backend the experiments run on. The cycle-accurate harness
    /// is simulator-only (`BackendKind::Sim`); the column is recorded so
    /// artifact rows merge cleanly with native-backend reports
    /// (`BENCH_9.json` from `hybrids-loadgen`).
    pub backend: BackendKind,
}

impl Scale {
    pub fn ci() -> Self {
        let mut cfg = Config::paper();
        // The LLC scales ~sqrt(n) relative to Table 1 so the paper's key
        // relationship (host-managed levels > NMP-managed levels; here 9/8
        // vs the paper's 13/9) is preserved at a tractable size.
        cfg.l1.size_bytes = 8 * 1024;
        cfg.l2.size_bytes = 64 * 1024;
        cfg.host_heap_bytes = 32 * 1024 * 1024;
        cfg.part_heap_bytes = 6 * 1024 * 1024;
        Scale {
            name: "ci",
            // 2^17 keys x ~48 B/node over a 16 kB LLC keeps the paper's
            // structure : LLC ratio (~400-500x).
            cfg,
            skiplist_keys: 1 << 17,
            btree_keys: 400_000,
            ops_per_thread: 600,
            warmup_per_thread: 250,
            btree_footprint_lines: 4,
            backend: BackendKind::Sim,
        }
    }

    pub fn scaled() -> Self {
        let mut cfg = Config::default_scaled();
        cfg.l1.size_bytes = 16 * 1024;
        cfg.l2.size_bytes = 128 * 1024; // 10 host / 8 NMP levels at 2^18 keys
        cfg.host_heap_bytes = 72 * 1024 * 1024;
        cfg.part_heap_bytes = 12 * 1024 * 1024;
        Scale {
            name: "scaled",
            cfg,
            skiplist_keys: 1 << 18,
            btree_keys: 1_900_000,
            ops_per_thread: 1500,
            warmup_per_thread: 500,
            btree_footprint_lines: 4,
            backend: BackendKind::Sim,
        }
    }

    pub fn paper() -> Self {
        let mut cfg = Config::paper();
        cfg.host_heap_bytes = 640 * 1024 * 1024;
        cfg.part_heap_bytes = 96 * 1024 * 1024;
        Scale {
            name: "paper",
            cfg,
            skiplist_keys: 1 << 22,
            btree_keys: 30_000_000,
            ops_per_thread: 2000,
            warmup_per_thread: 600,
            btree_footprint_lines: 4,
            backend: BackendKind::Sim,
        }
    }

    /// Minimal end-to-end scale: a `Config::tiny()` machine with a handful
    /// of ops, so the whole bench path (populate → warmup → measure →
    /// CSV/JSONL) runs in seconds. Used by the CI smoke step.
    pub fn smoke() -> Self {
        Scale {
            name: "smoke",
            cfg: Config::tiny(),
            skiplist_keys: 1 << 10,
            btree_keys: 2048,
            ops_per_thread: 20,
            warmup_per_thread: 5,
            btree_footprint_lines: 0,
            backend: BackendKind::Sim,
        }
    }

    /// Resolve from `HYBRIDS_SCALE` / `HYBRIDS_OPS` / `HYBRIDS_SHARDS`.
    pub fn from_env() -> Self {
        let mut s = match std::env::var("HYBRIDS_SCALE").as_deref() {
            Ok("paper") => Self::paper(),
            Ok("scaled") => Self::scaled(),
            Ok("smoke") => Self::smoke(),
            _ => Self::ci(),
        };
        if let Ok(ops) = std::env::var("HYBRIDS_OPS") {
            s.ops_per_thread = ops.parse().expect("HYBRIDS_OPS must be an integer");
        }
        if let Ok(shards) = std::env::var("HYBRIDS_SHARDS") {
            s.cfg.shards = shards.parse().expect("HYBRIDS_SHARDS must be an integer");
        }
        if let Ok(p) = std::env::var("HYBRIDS_POLICY") {
            s.cfg.policy = Policy::parse(&p).expect("HYBRIDS_POLICY must be 'fixed' or 'adaptive'");
        }
        if let Ok(b) = std::env::var("HYBRIDS_BACKEND") {
            s.backend = BackendKind::parse(&b).expect("HYBRIDS_BACKEND must be 'sim' or 'native'");
            assert_eq!(
                s.backend,
                BackendKind::Sim,
                "the cycle-accurate bench harness runs on the simulated backend only; \
                 native-backend serve throughput is measured by hybrids-loadgen \
                 against hybrids-server (BENCH_9.json)"
            );
        }
        s
    }

    /// Offload policy variant (`fixed` keeps the hand-tuned knobs,
    /// `adaptive` enables the self-tuning runtime); see
    /// `hybrids::offload::policy`.
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.cfg = self.cfg.with_policy(policy);
        self
    }

    /// Engine shard knob (`0` = one shard per vault, `1` = legacy loop);
    /// see `Config::with_shards`.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.cfg = self.cfg.with_shards(shards);
        self
    }

    /// Memory backend selector (records into the `backend` artifact
    /// column). The cycle-accurate harness only runs on the simulator;
    /// requesting `native` here is rejected with a pointer to the tool
    /// that does serve native traffic.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        assert_eq!(
            backend,
            BackendKind::Sim,
            "the cycle-accurate bench harness runs on the simulated backend only; \
             native-backend serve throughput is measured by hybrids-loadgen \
             against hybrids-server (BENCH_9.json)"
        );
        self.backend = backend;
        self
    }

    /// In-order host cores variant (sensitivity experiments, §5.2).
    pub fn in_order(mut self) -> Self {
        self.cfg = self.cfg.with_in_order_hosts();
        self
    }

    pub fn partitions(&self) -> u32 {
        self.cfg.nmp_partitions() as u32
    }

    /// Key space for skiplist experiments.
    pub fn skiplist_keyspace(&self) -> KeySpace {
        let headroom = (self.ops_per_thread * self.cfg.host_cores as u32).max(4096);
        KeySpace::new(self.skiplist_keys, self.partitions(), headroom)
    }

    /// Key space for B+ tree experiments.
    pub fn btree_keyspace(&self) -> KeySpace {
        let parts = self.partitions();
        let n = self.btree_keys / parts * parts;
        let headroom = (self.ops_per_thread * self.cfg.host_cores as u32).max(4096);
        KeySpace::new(n, parts, headroom)
    }
}

/// Initial `(key, value)` pairs for a key space.
pub fn initial_pairs(ks: &KeySpace) -> Vec<(Key, Value)> {
    (0..ks.total_initial()).map(|i| (ks.initial_key(i), i ^ 0x9E37)).collect()
}

/// The structure variants of the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    LockFree,
    NmpBased,
    HybridBlocking,
    HybridNonblocking(usize),
    HostOnly,
    HybridBtBlocking,
    HybridBtNonblocking(usize),
    HashMapBlocking,
    HashMapNonblocking(usize),
    PqueueBlocking,
    PqueueNonblocking(usize),
}

impl Variant {
    pub fn label(&self) -> String {
        match self {
            Variant::LockFree => "lock-free".into(),
            Variant::NmpBased => "NMP-based".into(),
            Variant::HybridBlocking | Variant::HybridBtBlocking => "hybrid-blocking".into(),
            Variant::HybridNonblocking(k) | Variant::HybridBtNonblocking(k) => {
                format!("hybrid-nonblocking{k}")
            }
            Variant::HostOnly => "host-only".into(),
            Variant::HashMapBlocking => "hashmap-blocking".into(),
            Variant::HashMapNonblocking(k) => format!("hashmap-nonblocking{k}"),
            Variant::PqueueBlocking => "pqueue-blocking".into(),
            Variant::PqueueNonblocking(k) => format!("pqueue-nonblocking{k}"),
        }
    }

    pub fn inflight(&self) -> usize {
        match self {
            Variant::HybridNonblocking(k)
            | Variant::HybridBtNonblocking(k)
            | Variant::HashMapNonblocking(k)
            | Variant::PqueueNonblocking(k) => *k,
            _ => 1,
        }
    }
}

/// Adapter so the lock-free skiplist (a plain structure with no NMP
/// portion) plugs into the driver.
pub struct LockFreeIndex(pub Arc<LockFreeSkipList>);

impl SimIndex for LockFreeIndex {
    type Pending = hybrids::OpResult;

    fn execute(&self, ctx: &mut nmp_sim::ThreadCtx, op: Op) -> hybrids::OpResult {
        match op {
            Op::Read(k) => match self.0.read(ctx, k) {
                Some((_, v)) => hybrids::OpResult::ok(v),
                None => hybrids::OpResult::fail(),
            },
            Op::Insert(k, v) => {
                if self.0.insert(ctx, k, v) {
                    hybrids::OpResult::ok(0)
                } else {
                    hybrids::OpResult::fail()
                }
            }
            Op::Remove(k) => {
                if self.0.remove(ctx, k) {
                    hybrids::OpResult::ok(0)
                } else {
                    hybrids::OpResult::fail()
                }
            }
            Op::Update(k, v) => {
                if self.0.update(ctx, k, v) {
                    hybrids::OpResult::ok(0)
                } else {
                    hybrids::OpResult::fail()
                }
            }
            Op::Scan(k, len) => {
                let n = self.0.scan(ctx, k, len as u32);
                hybrids::OpResult { ok: n > 0, value: n }
            }
            // Not a search-tree operation (priority queues only).
            Op::ExtractMin => hybrids::OpResult::fail(),
        }
    }

    fn issue(
        &self,
        ctx: &mut nmp_sim::ThreadCtx,
        _lane: usize,
        op: Op,
    ) -> hybrids::Issued<Self::Pending> {
        hybrids::Issued::Done(self.execute(ctx, op))
    }

    fn poll(&self, _ctx: &mut nmp_sim::ThreadCtx, p: &mut Self::Pending) -> hybrids::PollOutcome {
        hybrids::PollOutcome::Done(*p)
    }

    fn effect_spec(&self) -> nmp_sim::EffectSpec {
        use hybrids::effects::AccessDecl;
        use hybrids::publist::OpCode;
        use nmp_sim::analysis::RegionClass;
        // Entirely host-resident: traversals read host memory and may
        // help-unlink with a CAS; updates release-store the value word.
        let walk =
            [AccessDecl::read(RegionClass::Host), AccessDecl::write(RegionClass::Host).cas()];
        let mutate = [
            AccessDecl::read(RegionClass::Host),
            AccessDecl::write(RegionClass::Host),
            AccessDecl::write(RegionClass::Host).cas(),
            AccessDecl::write(RegionClass::Host).release(),
        ];
        nmp_sim::EffectSpec::new("lockfree-skiplist")
            .op(nmp_sim::OpSpec::new(OpCode::Read as u8, "Read").host_all(&walk))
            .op(nmp_sim::OpSpec::new(OpCode::Scan as u8, "Scan").host_all(&walk))
            .op(nmp_sim::OpSpec::new(OpCode::Update as u8, "Update").host_all(&mutate))
            .op(nmp_sim::OpSpec::new(OpCode::Insert as u8, "Insert").host_all(&mutate))
            .op(nmp_sim::OpSpec::new(OpCode::Remove as u8, "Remove").host_all(&mutate))
    }

    fn spawn_services(self: &Arc<Self>, _sim: &mut nmp_sim::Simulation) {}
}

/// One measured data point, serialized into the results files.
#[derive(Debug, Clone, Serialize)]
pub struct Record {
    pub experiment: String,
    pub scale: String,
    pub variant: String,
    pub workload: String,
    pub threads: u32,
    pub mops: f64,
    pub dram_reads_per_op: f64,
    pub host_dram_reads_per_op: f64,
    pub nmp_dram_reads_per_op: f64,
    pub mmio_per_op: f64,
    pub energy_nj_per_op: f64,
    pub cycles: u64,
    pub measured_ops: u64,
    pub succeeded_ops: u64,
    pub wall_ms: f64,
    pub sim_cycles_per_sec: f64,
    pub offload_posted: u64,
    pub offload_retries: u64,
    pub offload_lock_path: u64,
    pub offload_mean_batch: f64,
    /// End-to-end latency percentiles over the measured window (simulated
    /// cycles, all op kinds). Zero when built without the `trace` feature.
    pub lat_p50_cycles: f64,
    pub lat_p95_cycles: f64,
    pub lat_p99_cycles: f64,
    /// Engine vault shards the run resolved to (`1` = legacy single loop).
    pub shards: u32,
    /// Priority-queue stale minima-cache probes in the measured window
    /// (zero for non-pqueue structures).
    pub pq_stale_probes: u64,
    /// Offload policy the run used (`fixed` or `adaptive`).
    pub policy: String,
    /// Requests served by coalesced-response replication in the measured
    /// window (always 0 under the fixed policy).
    pub offload_coalesced: u64,
    /// Memory backend that produced the row (`sim` for everything the
    /// cycle-accurate harness emits; `native` rows come from the
    /// hybrids-loadgen report).
    pub backend: String,
}

impl Record {
    pub fn new(
        experiment: &str,
        scale: &Scale,
        variant: &Variant,
        workload: &str,
        r: &RunResult,
    ) -> Record {
        Record {
            experiment: experiment.into(),
            scale: scale.name.into(),
            variant: variant.label(),
            workload: workload.into(),
            threads: r.threads,
            mops: r.mops,
            dram_reads_per_op: r.dram_reads_per_op,
            host_dram_reads_per_op: r.host_dram_reads_per_op,
            nmp_dram_reads_per_op: r.nmp_dram_reads_per_op,
            mmio_per_op: r.mmio_per_op,
            energy_nj_per_op: r.energy_nj_per_op,
            cycles: r.cycles,
            measured_ops: r.measured_ops,
            succeeded_ops: r.succeeded_ops,
            wall_ms: r.wall_ms,
            sim_cycles_per_sec: r.sim_cycles_per_sec,
            offload_posted: r.offload_posted,
            offload_retries: r.offload_retries,
            offload_lock_path: r.offload_lock_path,
            offload_mean_batch: r.offload_mean_batch,
            lat_p50_cycles: r.lat_p50_cycles,
            lat_p95_cycles: r.lat_p95_cycles,
            lat_p99_cycles: r.lat_p99_cycles,
            shards: scale.cfg.resolved_vault_shards() as u32,
            pq_stale_probes: r.stats.offload.pq_stale_total(),
            policy: scale.cfg.policy.label().into(),
            offload_coalesced: r.offload_coalesced,
            backend: scale.backend.label().into(),
        }
    }
}

/// Run one skiplist variant on a fresh machine.
pub fn run_skiplist(scale: &Scale, variant: Variant, workload: WorkloadSpec) -> RunResult {
    let ks = scale.skiplist_keyspace();
    let machine = Machine::new(scale.cfg.clone());
    let pairs = initial_pairs(&ks);
    let spec = RunSpec {
        workload,
        warmup_per_thread: scale.warmup_per_thread,
        inflight: variant.inflight(),
        app_footprint_lines: 0,
    };
    match variant {
        Variant::LockFree => {
            let (total, _) = split_for(ks.total_initial() as u64, scale.cfg.l2.size_bytes as u64);
            // Conventional (non-cache-aligned, full-height-array) layout:
            // the standard implementation the paper benchmarks against.
            let sl = LockFreeSkipList::with_layout(
                Arc::clone(&machine),
                total,
                SEED,
                NodeLayout::Packed,
            );
            sl.populate(pairs);
            let idx = Arc::new(LockFreeIndex(Arc::new(sl)));
            run_index(&machine, &idx, &ks, &spec)
        }
        Variant::NmpBased => {
            // Whole structure in NMP: per-partition levels = log2(N/P).
            let per_part = (ks.total_initial() / ks.parts).max(2) as u64;
            let levels = 64 - (per_part - 1).leading_zeros();
            let sl = NmpSkipList::new(Arc::clone(&machine), ks, levels, SEED, spec.inflight.max(1));
            sl.populate(pairs);
            run_index(&machine, &sl, &ks, &spec)
        }
        Variant::HybridBlocking | Variant::HybridNonblocking(_) => {
            let (total, nh) = split_for(ks.total_initial() as u64, scale.cfg.l2.size_bytes as u64);
            let sl = HybridSkipList::new(
                Arc::clone(&machine),
                ks,
                total,
                nh,
                SEED,
                spec.inflight.max(1),
            );
            sl.populate(pairs);
            run_index(&machine, &sl, &ks, &spec)
        }
        v => panic!("{v:?} is not a skiplist variant"),
    }
}

/// Run one B+ tree variant on a fresh machine. The paper populates by
/// sorted insertion (≈ half-full nodes): fill = 0.5.
pub fn run_btree(scale: &Scale, variant: Variant, workload: WorkloadSpec) -> RunResult {
    let ks = scale.btree_keyspace();
    let machine = Machine::new(scale.cfg.clone());
    let pairs = initial_pairs(&ks);
    let spec = RunSpec {
        workload,
        warmup_per_thread: scale.warmup_per_thread,
        inflight: variant.inflight(),
        app_footprint_lines: scale.btree_footprint_lines,
    };
    match variant {
        Variant::HostOnly => {
            let t = HostBTree::new(Arc::clone(&machine), &pairs, 0.5);
            run_index(&machine, &t, &ks, &spec)
        }
        Variant::HybridBtBlocking | Variant::HybridBtNonblocking(_) => {
            let t = HybridBTree::new(Arc::clone(&machine), &pairs, 0.5, spec.inflight.max(1));
            run_index(&machine, &t, &ks, &spec)
        }
        v => panic!("{v:?} is not a B+ tree variant"),
    }
}

/// Run one hybrid hash map variant on a fresh machine. The bucket
/// directory targets a load factor around 4 keys/bucket, clamped so it
/// always fits the LLC (the structure's construction-time invariant).
pub fn run_hashmap(scale: &Scale, variant: Variant, workload: WorkloadSpec) -> RunResult {
    let ks = scale.skiplist_keyspace();
    let machine = Machine::new(scale.cfg.clone());
    let pairs = initial_pairs(&ks);
    let spec = RunSpec {
        workload,
        warmup_per_thread: scale.warmup_per_thread,
        inflight: variant.inflight(),
        app_footprint_lines: 0,
    };
    match variant {
        Variant::HashMapBlocking | Variant::HashMapNonblocking(_) => {
            let parts = ks.parts;
            let max_buckets = (scale.cfg.l2.size_bytes / 8 / parts).max(1) * parts;
            let buckets = (ks.total_initial() / 4 / parts).max(1) * parts;
            let hm = HybridHashMap::new(
                Arc::clone(&machine),
                buckets.min(max_buckets),
                SEED,
                spec.inflight.max(1),
            );
            hm.populate(pairs);
            run_index(&machine, &hm, &ks, &spec)
        }
        v => panic!("{v:?} is not a hash map variant"),
    }
}

/// Run one hybrid priority queue variant on a fresh machine. Per-partition
/// run levels follow the NMP-based sizing: log2 of the partition's share.
pub fn run_pqueue(scale: &Scale, variant: Variant, workload: WorkloadSpec) -> RunResult {
    run_pqueue_on(scale, variant, workload, scale.skiplist_keyspace())
}

/// [`run_pqueue`] with an explicit key space — the contention sweep uses a
/// deliberately small one so extract-mins can actually drain partitions.
pub fn run_pqueue_on(
    scale: &Scale,
    variant: Variant,
    workload: WorkloadSpec,
    ks: KeySpace,
) -> RunResult {
    let machine = Machine::new(scale.cfg.clone());
    let pairs = initial_pairs(&ks);
    let spec = RunSpec {
        workload,
        warmup_per_thread: scale.warmup_per_thread,
        inflight: variant.inflight(),
        app_footprint_lines: 0,
    };
    match variant {
        Variant::PqueueBlocking | Variant::PqueueNonblocking(_) => {
            let per_part = (ks.total_initial() / ks.parts).max(2) as u64;
            let levels = 64 - (per_part - 1).leading_zeros();
            let pq =
                HybridPqueue::new(Arc::clone(&machine), ks, levels, SEED, spec.inflight.max(1));
            pq.populate(&pairs);
            run_index(&machine, &pq, &ks, &spec)
        }
        v => panic!("{v:?} is not a priority queue variant"),
    }
}

/// Hash-map point-op mix (60r/20i/10d/10u) over uniform or zipfian keys,
/// on all host cores.
pub fn hashmap_workload(scale: &Scale, dist: KeyDist) -> WorkloadSpec {
    WorkloadSpec::hashmap_mixed(
        SEED ^ 0xA511,
        scale.cfg.host_cores as u32,
        scale.ops_per_thread,
        dist,
    )
}

/// Priority-queue insert/extract mix on all host cores.
pub fn pqueue_workload(scale: &Scale, insert_pct: u8) -> WorkloadSpec {
    WorkloadSpec::pqueue(
        SEED ^ 0x9011,
        scale.cfg.host_cores as u32,
        scale.ops_per_thread,
        insert_pct,
    )
}

/// Key space for the minima-cache contention sweep: deliberately tiny (16
/// initial keys per partition) so the sweep's net-draining mix actually
/// empties partitions within the measured window — a full-size pqueue never
/// drains at bench op counts, and a partition that never empties can never
/// serve a stale-empty probe.
pub fn pqueue_contention_keyspace(scale: &Scale) -> KeySpace {
    KeySpace::new(16 * scale.partitions(), scale.partitions(), 4096)
}

/// Skew-contended priority-queue workload at an explicit thread count:
/// zipfian(θ)-gap inserts pile onto hot partitions while extract-mins drain
/// globally, so cold partitions empty out and the host minima cache takes
/// stale probes (`pq_stale_probes` in the results files).
pub fn pqueue_skewed_workload(
    scale: &Scale,
    insert_pct: u8,
    theta_x100: u32,
    threads: u32,
) -> WorkloadSpec {
    WorkloadSpec::pqueue_skewed(
        SEED ^ 0x9017,
        threads.min(scale.cfg.host_cores as u32).max(1),
        scale.ops_per_thread,
        insert_pct,
        theta_x100,
    )
}

/// YCSB-C at a given thread count (baseline experiments, §5.1).
pub fn ycsb_c(scale: &Scale, threads: u32) -> WorkloadSpec {
    WorkloadSpec {
        seed: SEED ^ threads as u64,
        threads,
        ops_per_thread: scale.ops_per_thread,
        mix: Mix::ycsb_c(),
        read_dist: KeyDist::Zipfian,
        insert_dist: InsertDist::UniformGap,
    }
}

/// Sensitivity workload (§5.2): `X-Y-Z` mix, uniform keys, all host cores.
pub fn sensitivity(scale: &Scale, mix: Mix, insert_dist: InsertDist) -> WorkloadSpec {
    WorkloadSpec {
        seed: SEED ^ 0xF168,
        threads: scale.cfg.host_cores as u32,
        ops_per_thread: scale.ops_per_thread,
        mix,
        read_dist: KeyDist::Uniform,
        insert_dist,
    }
}

// ---- output ----

/// Render rows as an aligned text block.
pub fn render_table(title: &str, rows: &[(String, Vec<(String, f64)>)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n== {title} ==");
    for (name, cells) in rows {
        let mut line = format!("  {name:<24}");
        for (col, v) in cells {
            let _ = write!(line, " {col}={v:<10.4}");
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

/// Append records to `results/<experiment>.{csv,jsonl}` under the repo root
/// (override with `HYBRIDS_RESULTS_DIR`).
pub fn save_records(experiment: &str, records: &[Record]) {
    let dir = std::env::var("HYBRIDS_RESULTS_DIR").unwrap_or_else(|_| {
        format!("{}/results", env!("CARGO_MANIFEST_DIR").trim_end_matches("/crates/bench"))
    });
    let _ = std::fs::create_dir_all(&dir);
    let csv_path = format!("{dir}/{experiment}.csv");
    let fresh = !std::path::Path::new(&csv_path).exists();
    let mut csv = String::new();
    if fresh {
        csv.push_str(
            "experiment,scale,variant,workload,threads,mops,dram_reads_per_op,host_dram_reads_per_op,nmp_dram_reads_per_op,mmio_per_op,energy_nj_per_op,cycles,measured_ops,succeeded_ops,wall_ms,sim_cycles_per_sec,offload_posted,offload_retries,offload_lock_path,offload_mean_batch,lat_p50_cycles,lat_p95_cycles,lat_p99_cycles,shards,pq_stale_probes,policy,offload_coalesced,backend\n",
        );
    }
    for r in records {
        let _ = writeln!(
            csv,
            "{},{},{},{},{},{:.6},{:.4},{:.4},{:.4},{:.4},{:.4},{},{},{},{:.3},{:.0},{},{},{},{:.3},{:.1},{:.1},{:.1},{},{},{},{},{}",
            r.experiment,
            r.scale,
            r.variant,
            r.workload,
            r.threads,
            r.mops,
            r.dram_reads_per_op,
            r.host_dram_reads_per_op,
            r.nmp_dram_reads_per_op,
            r.mmio_per_op,
            r.energy_nj_per_op,
            r.cycles,
            r.measured_ops,
            r.succeeded_ops,
            r.wall_ms,
            r.sim_cycles_per_sec,
            r.offload_posted,
            r.offload_retries,
            r.offload_lock_path,
            r.offload_mean_batch,
            r.lat_p50_cycles,
            r.lat_p95_cycles,
            r.lat_p99_cycles,
            r.shards,
            r.pq_stale_probes,
            r.policy,
            r.offload_coalesced,
            r.backend
        );
    }
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new().create(true).append(true).open(&csv_path).unwrap();
    f.write_all(csv.as_bytes()).unwrap();
    let mut jl = String::new();
    for r in records {
        let _ = writeln!(jl, "{}", serde_json::to_string(r).unwrap());
    }
    let jl_path = format!("{dir}/{experiment}.jsonl");
    let mut f = std::fs::OpenOptions::new().create(true).append(true).open(&jl_path).unwrap();
    f.write_all(jl.as_bytes()).unwrap();
    eprintln!("[saved {} records to {csv_path}]", records.len());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_valid() {
        for s in [Scale::ci(), Scale::scaled(), Scale::paper()] {
            s.cfg.validate();
            let _ = s.skiplist_keyspace();
            let _ = s.btree_keyspace();
        }
    }

    #[test]
    fn variant_labels_match_paper() {
        assert_eq!(Variant::HybridNonblocking(4).label(), "hybrid-nonblocking4");
        assert_eq!(Variant::NmpBased.label(), "NMP-based");
        assert_eq!(Variant::HostOnly.label(), "host-only");
        assert_eq!(Variant::HybridBtBlocking.inflight(), 1);
        assert_eq!(Variant::HybridNonblocking(2).inflight(), 2);
        assert_eq!(Variant::HashMapBlocking.label(), "hashmap-blocking");
        assert_eq!(Variant::HashMapNonblocking(4).label(), "hashmap-nonblocking4");
        assert_eq!(Variant::PqueueNonblocking(4).inflight(), 4);
        assert_eq!(Variant::PqueueBlocking.label(), "pqueue-blocking");
    }

    #[test]
    fn ci_scale_preserves_split_shape() {
        let s = Scale::ci();
        let (total, nh) = split_for(s.skiplist_keys as u64, s.cfg.l2.size_bytes as u64);
        assert!(nh >= 1 && nh < total);
        // Host portion of the hybrid fits the LLC budget.
        let host_nodes = s.skiplist_keys as u64 >> nh;
        assert!(host_nodes * 128 <= s.cfg.l2.size_bytes as u64);
    }

    #[test]
    fn tiny_skiplist_run_smoke() {
        let mut s = Scale::ci();
        s.skiplist_keys = 1 << 10;
        s.ops_per_thread = 30;
        s.warmup_per_thread = 10;
        let r = run_skiplist(&s, Variant::HybridBlocking, ycsb_c(&s, 2));
        assert_eq!(r.measured_ops, 60);
        assert!(r.mops > 0.0);
    }

    #[test]
    fn tiny_btree_run_smoke() {
        let mut s = Scale::ci();
        s.btree_keys = 4096;
        s.ops_per_thread = 30;
        s.warmup_per_thread = 10;
        let r = run_btree(&s, Variant::HostOnly, ycsb_c(&s, 2));
        assert_eq!(r.measured_ops, 60);
        assert!(r.succeeded_ops > 0);
    }

    #[test]
    fn smoke_hashmap_run() {
        let s = Scale::smoke();
        let r =
            run_hashmap(&s, Variant::HashMapNonblocking(2), hashmap_workload(&s, KeyDist::Uniform));
        assert!(r.measured_ops > 0);
        assert!(r.offload_posted > 0, "hash map must route through the runtime");
    }

    #[test]
    fn smoke_pqueue_run() {
        let s = Scale::smoke();
        let r = run_pqueue(&s, Variant::PqueueBlocking, pqueue_workload(&s, 50));
        assert!(r.measured_ops > 0);
        assert!(r.offload_posted > 0, "pqueue must route through the runtime");
    }
}
