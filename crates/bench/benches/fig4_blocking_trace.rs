//! Figure 4 — blocking vs. non-blocking NMP calls.
//!
//! Reproduces the schedule illustration of §3.5 as a measured trace: one
//! host thread issues a burst of hybrid-skiplist operations with blocking
//! calls (each offload stalls the host) and with up to 4 non-blocking calls
//! in flight (offloads overlap). Prints per-operation issue/complete times
//! and the resulting makespans.

use std::sync::Arc;

use hybrids::api::{Issued, PollOutcome, SimIndex};
use hybrids::skiplist::{hybrid::split_for, HybridSkipList};
use hybrids_bench::{initial_pairs, Scale, SEED};
use nmp_sim::{Machine, ThreadKind};
use workloads::Op;

fn trace(scale: &Scale, inflight: usize) -> (Vec<(u64, u64)>, u64) {
    let mut scale = scale.clone();
    scale.skiplist_keys = scale.skiplist_keys.min(1 << 14);
    let ks = scale.skiplist_keyspace();
    let machine = Machine::new(scale.cfg.clone());
    let (total, nh) = split_for(ks.total_initial() as u64, scale.cfg.l2.size_bytes as u64);
    let sl = HybridSkipList::new(Arc::clone(&machine), ks, total, nh, SEED, inflight.max(1));
    sl.populate(initial_pairs(&ks));
    let ops: Vec<Op> = (0..8u32).map(|i| Op::Read(ks.initial_key(i * 37 + 5))).collect();
    let spans = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let mut sim = machine.simulation();
    sl.spawn_services(&mut sim);
    {
        let sl = Arc::clone(&sl);
        let spans = Arc::clone(&spans);
        sim.spawn("host-0", ThreadKind::Host { core: 0 }, move |ctx| {
            if inflight <= 1 {
                for &op in &ops {
                    let t0 = ctx.now();
                    let _ = sl.execute(ctx, op);
                    spans.lock().push((t0, ctx.now()));
                }
            } else {
                let mut lanes: Vec<Option<(u64, _)>> = (0..inflight).map(|_| None).collect();
                let mut next = 0;
                let mut done = 0;
                while done < ops.len() {
                    for (lane, slot) in lanes.iter_mut().enumerate() {
                        match slot.take() {
                            None if next < ops.len() => {
                                let t0 = ctx.now();
                                match sl.issue(ctx, lane, ops[next]) {
                                    Issued::Done(_) => {
                                        spans.lock().push((t0, ctx.now()));
                                        done += 1;
                                    }
                                    Issued::Pending(p) => *slot = Some((t0, p)),
                                }
                                next += 1;
                            }
                            None => {}
                            Some((t0, mut p)) => match sl.poll(ctx, &mut p) {
                                PollOutcome::Done(_) => {
                                    spans.lock().push((t0, ctx.now()));
                                    done += 1;
                                }
                                PollOutcome::Pending => *slot = Some((t0, p)),
                            },
                        }
                    }
                    ctx.idle(16);
                }
            }
        });
    }
    let out = sim.run();
    let spans = spans.lock().clone();
    (spans, out.makespan())
}

fn render(label: &str, spans: &[(u64, u64)], makespan: u64) {
    println!("\n{label}: makespan = {makespan} cycles");
    let t0 = spans.iter().map(|s| s.0).min().unwrap_or(0);
    let t1 = spans.iter().map(|s| s.1).max().unwrap_or(1);
    let width = 64usize;
    let scale = ((t1 - t0).max(1)) as f64 / width as f64;
    for (i, &(a, b)) in spans.iter().enumerate() {
        let s = ((a - t0) as f64 / scale) as usize;
        let e = (((b - t0) as f64 / scale) as usize).clamp(s + 1, width);
        let mut bar = vec![b' '; width];
        for c in bar.iter_mut().take(e).skip(s) {
            *c = b'#';
        }
        println!("  op{i:<2} |{}| {a:>8} -> {b:>8}", String::from_utf8(bar).unwrap());
    }
}

fn main() {
    let scale = Scale::from_env();
    println!("fig4: blocking vs non-blocking NMP calls (scale = {})", scale.name);
    let (b_spans, b_make) = trace(&scale, 1);
    render("(a) blocking NMP calls", &b_spans, b_make);
    let (n_spans, n_make) = trace(&scale, 4);
    render("(b) non-blocking NMP calls (4 in flight)", &n_spans, n_make);
    println!(
        "\nnon-blocking speedup on this burst: {:.2}x (overlap visible above)",
        b_make as f64 / n_make as f64
    );
    assert!(n_make <= b_make, "non-blocking must not be slower on an offload-bound burst");
}
