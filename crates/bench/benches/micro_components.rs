//! Criterion micro-benchmarks of the simulator substrate components:
//! cache model, DRAM vault timing, zipfian generation, engine handshake,
//! and end-to-end simulated operations. These measure *wall-clock* cost of
//! the simulator itself (not simulated cycles) — they exist to keep the
//! substrate fast enough that figure-scale experiments stay tractable.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use hybrids::api::SimIndex;
use hybrids::skiplist::HybridSkipList;
use hybrids_bench::{initial_pairs, SEED};
use nmp_sim::{cache::Cache, dram::{DramTiming, Vault}, Config, Machine, ThreadKind};
use std::hint::black_box;
use workloads::{KeySpace, Op, Rng, ScrambledZipfian};

fn bench_cache(c: &mut Criterion) {
    let cfg = Config::paper();
    c.bench_function("cache_access_hit", |b| {
        let mut cache = Cache::new(&cfg.l2);
        cache.access(0x1000, false);
        b.iter(|| black_box(cache.access(black_box(0x1000), false)));
    });
    c.bench_function("cache_access_miss_stream", |b| {
        let mut cache = Cache::new(&cfg.l2);
        let mut a = 0u32;
        b.iter(|| {
            a = a.wrapping_add(128);
            black_box(cache.access(black_box(a % (64 << 20)), false))
        });
    });
}

fn bench_dram(c: &mut Criterion) {
    let cfg = Config::paper();
    let t = DramTiming::from_config(&cfg);
    c.bench_function("vault_access", |b| {
        let mut v = Vault::new(&t);
        let mut now = 0u64;
        let mut a = 0u32;
        b.iter(|| {
            now += 100;
            a = a.wrapping_add(4096 + 64);
            black_box(v.access(now, a % (64 << 20), false, &t))
        });
    });
}

fn bench_zipf(c: &mut Criterion) {
    let z = ScrambledZipfian::ycsb(1 << 22);
    let mut rng = Rng::new(7);
    c.bench_function("scrambled_zipfian_next", |b| {
        b.iter(|| black_box(z.next_index(&mut rng)))
    });
}

fn bench_engine_handshake(c: &mut Criterion) {
    // Cost of one simulated memory access = one engine handshake.
    c.bench_function("sim_1000_reads", |b| {
        b.iter(|| {
            let machine = Machine::new(Config::tiny());
            let base = machine.map().host_base;
            let mut sim = machine.simulation();
            sim.spawn("h0", ThreadKind::Host { core: 0 }, move |ctx| {
                for i in 0..1000u32 {
                    black_box(ctx.read_u64(base + (i % 256) * 8));
                }
            });
            black_box(sim.run().makespan())
        });
    });
}

fn bench_hybrid_ops(c: &mut Criterion) {
    let machine = Machine::new(Config::tiny());
    let ks = KeySpace::new(4096, 2, 512);
    let sl = HybridSkipList::new(Arc::clone(&machine), ks, 12, 5, SEED, 1);
    sl.populate(initial_pairs(&ks));
    c.bench_function("hybrid_skiplist_100_reads_sim", |b| {
        b.iter(|| {
            let mut sim = machine.simulation();
            sl.spawn_services(&mut sim);
            let sl2 = Arc::clone(&sl);
            sim.spawn("h0", ThreadKind::Host { core: 0 }, move |ctx| {
                for i in 0..100u32 {
                    black_box(sl2.execute(ctx, Op::Read(ks.initial_key(i * 31 % 4096))));
                }
            });
            black_box(sim.run().makespan())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cache, bench_dram, bench_zipf, bench_engine_handshake, bench_hybrid_ops
}
criterion_main!(benches);
