//! Micro-benchmarks of the simulator substrate components: cache model,
//! DRAM vault timing, zipfian generation, engine handshake, and end-to-end
//! simulated operations. These measure *wall-clock* cost of the simulator
//! itself (not simulated cycles) — they exist to keep the substrate fast
//! enough that figure-scale experiments stay tractable.
//!
//! Criterion is unavailable offline, so this is a plain `harness = false`
//! binary with `std::time::Instant` timing loops (median of several
//! batches, ns/iter).

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use hybrids::api::SimIndex;
use hybrids::skiplist::HybridSkipList;
use hybrids_bench::{initial_pairs, SEED};
use nmp_sim::{
    cache::Cache,
    dram::{DramTiming, Vault},
    Config, Machine, ThreadKind,
};
use workloads::{KeySpace, Op, Rng, ScrambledZipfian};

/// Time `iters` runs of `f` per batch, repeating `batches` times; report
/// the median batch as ns/iter.
fn bench(name: &str, batches: usize, iters: u64, mut f: impl FnMut()) {
    let mut per_iter_ns: Vec<f64> = (0..batches)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    println!("{name:<34} {:>12.1} ns/iter", per_iter_ns[per_iter_ns.len() / 2]);
}

fn bench_cache() {
    let cfg = Config::paper();
    let mut cache = Cache::new(&cfg.l2);
    cache.access(0x1000, false);
    bench("cache_access_hit", 7, 1_000_000, || {
        black_box(cache.access(black_box(0x1000), false));
    });

    let mut cache = Cache::new(&cfg.l2);
    let mut a = 0u32;
    bench("cache_access_miss_stream", 7, 1_000_000, || {
        a = a.wrapping_add(128);
        black_box(cache.access(black_box(a % (64 << 20)), false));
    });
}

fn bench_dram() {
    let cfg = Config::paper();
    let t = DramTiming::from_config(&cfg);
    let mut v = Vault::new(&t);
    let mut now = 0u64;
    let mut a = 0u32;
    bench("vault_access", 7, 1_000_000, || {
        now += 100;
        a = a.wrapping_add(4096 + 64);
        black_box(v.access(now, a % (64 << 20), false, &t));
    });
}

fn bench_zipf() {
    let z = ScrambledZipfian::ycsb(1 << 22);
    let mut rng = Rng::new(7);
    bench("scrambled_zipfian_next", 7, 1_000_000, || {
        black_box(z.next_index(&mut rng));
    });
}

fn bench_engine_handshake() {
    // Cost of one simulated memory access = one engine handshake.
    bench("sim_1000_reads", 5, 10, || {
        let machine = Machine::new(Config::tiny());
        let base = machine.map().host_base;
        let mut sim = machine.simulation();
        sim.spawn("h0", ThreadKind::Host { core: 0 }, move |ctx| {
            for i in 0..1000u32 {
                black_box(ctx.read_u64(base + (i % 256) * 8));
            }
        });
        black_box(sim.run().makespan());
    });
}

fn bench_hybrid_ops() {
    let machine = Machine::new(Config::tiny());
    let ks = KeySpace::new(4096, 2, 512);
    let sl = HybridSkipList::new(Arc::clone(&machine), ks, 12, 5, SEED, 1);
    sl.populate(initial_pairs(&ks));
    bench("hybrid_skiplist_100_reads_sim", 5, 10, || {
        let mut sim = machine.simulation();
        sl.spawn_services(&mut sim);
        let sl2 = Arc::clone(&sl);
        sim.spawn("h0", ThreadKind::Host { core: 0 }, move |ctx| {
            for i in 0..100u32 {
                black_box(sl2.execute(ctx, Op::Read(ks.initial_key(i * 31 % 4096))));
            }
        });
        black_box(sim.run().makespan());
    });
}

fn main() {
    bench_cache();
    bench_dram();
    bench_zipf();
    bench_engine_handshake();
    bench_hybrid_ops();
}
