//! Figure 5 — skiplist baseline evaluation with YCSB-C.
//!
//! (a) operation throughput vs. host thread count for *lock-free*,
//!     *NMP-based*, *hybrid-blocking*, *hybrid-nonblocking2/4*;
//! (b) average DRAM reads per operation for the same variants.
//!
//! Paper shape targets (at 8 threads): hybrid-blocking ≈ +99% over
//! NMP-based and ≈ +46% over lock-free; hybrid-nonblocking4 ≈ 2.46× the
//! lock-free throughput. DRAM reads/op: NMP-based > lock-free > hybrid
//! (paper: ≈60 / 36 / 24).

use hybrids_bench::{run_skiplist, save_records, ycsb_c, Record, Scale, Variant};

fn main() {
    let scale = Scale::from_env();
    let threads: Vec<u32> =
        [1u32, 2, 4, 8].into_iter().filter(|&t| t as usize <= scale.cfg.host_cores).collect();
    let variants = [
        Variant::LockFree,
        Variant::NmpBased,
        Variant::HybridBlocking,
        Variant::HybridNonblocking(2),
        Variant::HybridNonblocking(4),
    ];
    let mut records = Vec::new();
    println!("fig5: skiplist YCSB-C baseline (scale = {})", scale.name);
    println!("{:<22} {:>7} {:>12} {:>14}", "variant", "threads", "Mops/s", "DRAM reads/op");
    for &t in &threads {
        for v in variants {
            let r = run_skiplist(&scale, v, ycsb_c(&scale, t));
            println!("{:<22} {:>7} {:>12.4} {:>14.2}", v.label(), t, r.mops, r.dram_reads_per_op);
            records.push(Record::new("fig5", &scale, &v, "YCSB-C", &r));
        }
    }
    // Fig 5a headline ratios at max threads.
    let at = |label: &str| {
        records
            .iter()
            .find(|r| r.variant == label && r.threads == *threads.last().unwrap())
            .unwrap()
    };
    let lf = at("lock-free").mops;
    let nmp = at("NMP-based").mops;
    let hb = at("hybrid-blocking").mops;
    let hn4 = at("hybrid-nonblocking4").mops;
    println!("\nheadline ratios at {} threads:", threads.last().unwrap());
    println!("  hybrid-blocking / NMP-based     = {:.2}x  (paper ~1.99x)", hb / nmp);
    println!("  hybrid-blocking / lock-free     = {:.2}x  (paper ~1.46x)", hb / lf);
    println!("  hybrid-nonblocking4 / lock-free = {:.2}x  (paper ~2.46x)", hn4 / lf);
    println!(
        "  DRAM reads/op: lock-free {:.1}, NMP-based {:.1}, hybrid {:.1} (paper 36 / ~60 / 24)",
        at("lock-free").dram_reads_per_op,
        at("NMP-based").dram_reads_per_op,
        at("hybrid-blocking").dram_reads_per_op
    );
    save_records("fig5", &records);
}
