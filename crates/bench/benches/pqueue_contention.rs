//! Priority-queue minima-cache contention sweep: zipf θ × host threads.
//!
//! The hybrid pqueue caches each partition's minimum in a host-side sync
//! cell; extract-min merges over the cache and only probes a partition's
//! NMP run when its cell claims a candidate. Under skewed insertion
//! (zipfian-gap keys pile onto the top partition) with a net-draining mix
//! (40 % insert / 60 % extract) over a deliberately tiny queue
//! ([`pqueue_contention_keyspace`]: 16 initial keys/partition), the low
//! partitions drain empty, their cached minima go stale, and extract-min
//! burns round trips on stale-empty probes — `pq_stale_probes` in the
//! results files. Sweeping θ at several thread counts charts how skew and
//! concurrency compound: more threads drain faster than the cache
//! refreshes, and higher θ starves more partitions.

use hybrids_bench::{
    pqueue_contention_keyspace, pqueue_skewed_workload, run_pqueue_on, save_records, Record, Scale,
    Variant,
};

fn main() {
    let scale = Scale::from_env();
    let host_cores = scale.cfg.host_cores as u32;
    // θ must stay inside the YCSB generator's domain [0, 1).
    let thetas: &[u32] = &[10, 50, 90, 99];
    let threads: Vec<u32> = [1u32, 2, 4, 8].iter().copied().filter(|t| *t <= host_cores).collect();
    println!("pqueue minima-cache contention sweep (scale = {})", scale.name);
    println!(
        "{:<8} {:>8} {:<16} {:>10} {:>12} {:>12}",
        "theta", "threads", "variant", "Mops/s", "stale", "stale/op"
    );
    let mut records = Vec::new();
    for v in [Variant::PqueueBlocking, Variant::PqueueNonblocking(4)] {
        for &theta_x100 in thetas {
            for &t in &threads {
                let wl = pqueue_skewed_workload(&scale, 40, theta_x100, t);
                let r = run_pqueue_on(&scale, v, wl, pqueue_contention_keyspace(&scale));
                let stale = r.stats.offload.pq_stale_total();
                let label = format!("{}-th{:.2}-t{}", wl.mix.label(), theta_x100 as f64 / 100.0, t);
                println!(
                    "{:<8.2} {:>8} {:<16} {:>10.4} {:>12} {:>12.3}",
                    theta_x100 as f64 / 100.0,
                    t,
                    v.label(),
                    r.mops,
                    stale,
                    stale as f64 / r.measured_ops.max(1) as f64,
                );
                records.push(Record::new("pqueue_contention", &scale, &v, &label, &r));
            }
        }
    }
    save_records("pqueue_contention", &records);
}
