//! Figure 7 — skiplist sensitivity to concurrent modifications.
//!
//! Workloads `X-Y-Z` (read-insert-remove percentages) with uniform key
//! distribution, all host threads, in-order host cores (§5.2). Throughputs
//! are normalized to *lock-free* at 100-0-0.
//!
//! Paper shape targets: modifications hurt every variant but hurt the
//! hybrids least (lock-free retains 80% of its read-only throughput at
//! 50-25-25; hybrid-blocking 90%; hybrid-nonblocking4 93%), and at
//! 50-25-25 the hybrids reach ≈1.61× / ≈3.12× lock-free.

use hybrids_bench::{run_skiplist, save_records, sensitivity, Record, Scale, Variant};
use workloads::{InsertDist, Mix};

fn main() {
    let scale = Scale::from_env().in_order();
    let variants = [Variant::LockFree, Variant::HybridBlocking, Variant::HybridNonblocking(4)];
    let mut records = Vec::new();
    let mut results: Vec<(String, String, f64)> = Vec::new();
    println!("fig7: skiplist sensitivity (scale = {}, in-order hosts)", scale.name);
    println!("{:<22} {:>10} {:>12} {:>14}", "variant", "mix", "Mops/s", "DRAM reads/op");
    for mix in Mix::sensitivity_suite() {
        for v in variants {
            let wl = sensitivity(&scale, mix, InsertDist::UniformGap);
            let r = run_skiplist(&scale, v, wl);
            println!(
                "{:<22} {:>10} {:>12.4} {:>14.2}",
                v.label(),
                mix.label(),
                r.mops,
                r.dram_reads_per_op
            );
            results.push((v.label(), mix.label(), r.mops));
            records.push(Record::new("fig7", &scale, &v, &mix.label(), &r));
        }
    }
    let base = results
        .iter()
        .find(|(v, m, _)| v == "lock-free" && m == "100-0-0")
        .map(|(_, _, x)| *x)
        .unwrap();
    println!("\nnormalized throughput (lock-free @ 100-0-0 = 1.00):");
    for (v, m, x) in &results {
        println!("  {v:<22} {m:>10}  {:.3}", x / base);
    }
    let get = |v: &str, m: &str| {
        results.iter().find(|(a, b, _)| a == v && b == m).map(|(_, _, x)| *x).unwrap()
    };
    println!("\nretention at 50-25-25 vs own 100-0-0 (paper: 80% / 90% / 93%):");
    for v in ["lock-free", "hybrid-blocking", "hybrid-nonblocking4"] {
        println!("  {v:<22} {:.1}%", get(v, "50-25-25") / get(v, "100-0-0") * 100.0);
    }
    println!("\nratios vs lock-free at 50-25-25 (paper: 1.61x / 3.12x):");
    println!(
        "  hybrid-blocking     {:.2}x",
        get("hybrid-blocking", "50-25-25") / get("lock-free", "50-25-25")
    );
    println!(
        "  hybrid-nonblocking4 {:.2}x",
        get("hybrid-nonblocking4", "50-25-25") / get("lock-free", "50-25-25")
    );
    save_records("fig7", &records);
}
