//! Figures 8 & 9 — B+ tree sensitivity to concurrent modifications.
//!
//! Mixes `X-Y-Z` with uniform read/remove keys and **split-heavy** insert
//! keys targeted at the last leaf of each NMP partition (maximum node
//! splits), plus the *50-25-25 fully uniform* workload whose inserts are
//! spread over all leaves and incur no splits (§5.2). In-order host cores.
//!
//! Fig. 8 reports throughput normalized to *host-only* at 100-0-0;
//! Fig. 9 reports memory reads per operation for the same runs.
//!
//! Paper shape targets: hybrid-blocking stays within ~10% of its read-only
//! throughput and ≈93.5% of host-only at 50-25-25; host-only *gains* a few
//! percent with split-heavy inserts (targeted leaves stay cached) and loses
//! ~6% on fully-uniform; hybrid-nonblocking4 ≈ 1.5× host-only everywhere.

use hybrids_bench::{run_btree, save_records, sensitivity, Record, Scale, Variant};
use workloads::{InsertDist, Mix};

fn main() {
    let scale = Scale::from_env().in_order();
    let variants = [Variant::HostOnly, Variant::HybridBtBlocking, Variant::HybridBtNonblocking(4)];
    let mut records = Vec::new();
    let mut results: Vec<(String, String, f64, f64)> = Vec::new();
    println!("fig8/fig9: B+ tree sensitivity (scale = {}, in-order hosts)", scale.name);
    println!("{:<22} {:>18} {:>12} {:>14}", "variant", "workload", "Mops/s", "mem reads/op");
    let mut workloads_list: Vec<(String, Mix, InsertDist)> = Mix::sensitivity_suite()
        .into_iter()
        .map(|m| (m.label(), m, InsertDist::PartitionTail))
        .collect();
    workloads_list.push((
        "50-25-25-uniform".into(),
        Mix::read_insert_remove(50, 25, 25),
        InsertDist::UniformGap,
    ));
    for (label, mix, dist) in &workloads_list {
        for v in variants {
            let wl = sensitivity(&scale, *mix, *dist);
            let r = run_btree(&scale, v, wl);
            println!(
                "{:<22} {:>18} {:>12.4} {:>14.2}",
                v.label(),
                label,
                r.mops,
                r.dram_reads_per_op
            );
            results.push((v.label(), label.clone(), r.mops, r.dram_reads_per_op));
            records.push(Record::new("fig8", &scale, &v, label, &r));
        }
    }
    let get = |v: &str, m: &str| {
        results.iter().find(|(a, b, _, _)| a == v && b == m).map(|(_, _, x, _)| *x).unwrap()
    };
    let base = get("host-only", "100-0-0");
    println!("\nfig8: normalized throughput (host-only @ 100-0-0 = 1.00):");
    for (v, m, x, _) in &results {
        println!("  {v:<22} {m:>18}  {:.3}", x / base);
    }
    println!("\nfig9: memory reads per operation:");
    for (v, m, _, d) in &results {
        println!("  {v:<22} {m:>18}  {d:.2}");
    }
    println!("\nheadline shapes:");
    println!(
        "  hybrid-blocking @50-25-25 vs own read-only: {:.1}% (paper ~90%)",
        get("hybrid-blocking", "50-25-25") / get("hybrid-blocking", "100-0-0") * 100.0
    );
    println!(
        "  hybrid-blocking / host-only @50-25-25:      {:.2}x (paper ~0.935x)",
        get("hybrid-blocking", "50-25-25") / get("host-only", "50-25-25")
    );
    println!(
        "  hybrid-nonblocking4 / host-only @50-25-25:  {:.2}x (paper ~1.46x)",
        get("hybrid-nonblocking4", "50-25-25") / get("host-only", "50-25-25")
    );
    println!(
        "  hybrid-nonblocking4 / host-only @50-25-25-uniform: {:.2}x (paper ~1.60x)",
        get("hybrid-nonblocking4", "50-25-25-uniform") / get("host-only", "50-25-25-uniform")
    );
    save_records("fig8_fig9", &records);
}
