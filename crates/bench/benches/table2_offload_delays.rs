//! Table 2 — delays in offloading operation requests to NMP cores.
//!
//! Measures, across repeated single-operation offloads on an otherwise idle
//! machine (the paper's methodology): the host-side request-write delay,
//! the time until the NMP core notices the request, the time for the host
//! to notice completion, and the full round trip excluding NMP-side work.
//! The paper's observation to reproduce: request + response communication
//! alone costs on the order of 1–2 LLC-miss delays.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hybrids::publist::{spawn_combiners, NmpExec, OpCode, PubLists, Request, Response};
use hybrids_bench::Scale;
use nmp_sim::{Machine, ThreadCtx, ThreadKind};

/// No-op executor that records when the NMP core picked the request up.
struct Probe {
    noticed: Arc<AtomicU64>,
    finished: Arc<AtomicU64>,
}

impl NmpExec for Probe {
    type SlotState = ();
    fn exec(&self, ctx: &mut ThreadCtx, _part: usize, _req: &Request, _s: &mut ()) -> Response {
        self.noticed.store(ctx.now(), Ordering::Relaxed);
        ctx.advance(1); // negligible NMP-side work
        self.finished.store(ctx.now(), Ordering::Relaxed);
        Response::ok_value(0)
    }

    fn effect_spec(&self) -> nmp_sim::EffectSpec {
        // Pure protocol probe: no data-structure memory is touched.
        nmp_sim::EffectSpec::new("offload-probe")
            .op(hybrids::effects::protocol_op(OpCode::Read, "Read"))
    }
}

fn main() {
    let scale = Scale::from_env();
    let machine = Machine::new(scale.cfg.clone());
    let lists = Arc::new(PubLists::new(Arc::clone(&machine), 1));
    let noticed = Arc::new(AtomicU64::new(0));
    let finished = Arc::new(AtomicU64::new(0));
    let iterations = 50u32;

    // Collected per-iteration samples (cycles):
    // (request write, notice delay, response notice delay, round trip).
    type Sample = (u64, u64, u64, u64);
    let samples: Arc<parking_lot::Mutex<Vec<Sample>>> =
        Arc::new(parking_lot::Mutex::new(Vec::new()));

    let mut sim = machine.simulation();
    spawn_combiners(
        &mut sim,
        Arc::clone(&lists),
        Arc::new(Probe { noticed: Arc::clone(&noticed), finished: Arc::clone(&finished) }),
    );
    {
        let lists = Arc::clone(&lists);
        let noticed = Arc::clone(&noticed);
        let finished = Arc::clone(&finished);
        let samples = Arc::clone(&samples);
        sim.spawn("host-0", ThreadKind::Host { core: 0 }, move |ctx| {
            for i in 0..iterations {
                let t_start = ctx.now();
                lists.post(ctx, 0, 0, &Request::new(OpCode::Read, 100 + i, 0));
                let t_posted = ctx.now();
                let _ = lists.wait_response(ctx, 0, 0);
                let t_done = ctx.now();
                let t_noticed = noticed.load(Ordering::Relaxed);
                let t_finished = finished.load(Ordering::Relaxed);
                samples.lock().push((
                    t_posted - t_start,                 // request write (4 MMIO stores)
                    t_noticed.saturating_sub(t_posted), // until combiner picks it up
                    t_done.saturating_sub(t_finished),  // completion -> host notices
                    t_done - t_start,                   // full round trip
                ));
                ctx.idle(200); // let the combiner go idle between iterations
            }
        });
    }
    sim.run();

    let samples = samples.lock();
    let avg = |f: fn(&(u64, u64, u64, u64)) -> u64| {
        samples.iter().map(f).sum::<u64>() as f64 / samples.len() as f64
    };
    let llc = scale.cfg.llc_miss_cycles() as f64;
    println!("table2: NMP offload delays (scale = {}, {} iterations)", scale.name, samples.len());
    println!("  {:<38} {:>10} {:>12}", "component", "cycles", "LLC misses");
    let rows = [
        ("write op request (host MMIO stores)", avg(|s| s.0)),
        ("request noticed by NMP core", avg(|s| s.1)),
        ("completion noticed by host (poll)", avg(|s| s.2)),
        ("full round trip (incl. 1-cycle work)", avg(|s| s.3)),
    ];
    for (name, cycles) in rows {
        println!("  {name:<38} {cycles:>10.1} {:>12.2}", cycles / llc);
    }
    println!(
        "\n  one LLC miss = {llc:.0} cycles; paper: request+response communication \
         sums to ~1-2 LLC miss delays"
    );
    let comm = avg(|s| s.0) + avg(|s| s.2);
    println!("  measured request+response communication = {:.2} LLC misses", comm / llc);
}
