//! New hybrid structures on the shared offload runtime (§6.3 extension):
//! the hash map (host-resident bucket directory, NMP-managed chains) and
//! the priority queue (host-merged partition minima, NMP-managed sorted
//! runs), each in blocking and 4-deep pipelined modes.
//!
//! Expected shape: the hash map's host phase is a single LLC-resident
//! directory read, so nearly all of its DRAM traffic is NMP-side chain
//! walking — the most offload-friendly structure in the suite. The
//! priority queue's extract-min adds a host-side merge over the cached
//! partition minima; pipelining overlaps the combiner round trips of
//! independent inserts.

use hybrids_bench::{
    hashmap_workload, pqueue_workload, run_hashmap, run_pqueue, save_records, Record, Scale,
    Variant,
};
use workloads::KeyDist;

fn main() {
    let scale = Scale::from_env();
    println!("new structures: hybrid hash map + hybrid pqueue (scale = {})", scale.name);
    println!(
        "{:<10} {:<22} {:<16} {:>10} {:>14} {:>10}",
        "structure", "variant", "workload", "Mops/s", "DRAM reads/op", "posted"
    );
    let mut records = Vec::new();
    for v in [Variant::HashMapBlocking, Variant::HashMapNonblocking(4)] {
        for dist in [KeyDist::Uniform, KeyDist::Zipfian] {
            let wl = hashmap_workload(&scale, dist);
            let label = wl.mix.label()
                + match dist {
                    KeyDist::Uniform => "-uni",
                    _ => "-zipf",
                };
            let r = run_hashmap(&scale, v, wl);
            println!(
                "{:<10} {:<22} {:<16} {:>10.4} {:>14.2} {:>10}",
                "hashmap",
                v.label(),
                label,
                r.mops,
                r.dram_reads_per_op,
                r.offload_posted
            );
            records.push(Record::new("new_structures", &scale, &v, &label, &r));
        }
    }
    for v in [Variant::PqueueBlocking, Variant::PqueueNonblocking(4)] {
        for insert_pct in [50u8, 80] {
            let wl = pqueue_workload(&scale, insert_pct);
            let label = wl.mix.label();
            let r = run_pqueue(&scale, v, wl);
            println!(
                "{:<10} {:<22} {:<16} {:>10.4} {:>14.2} {:>10}",
                "pqueue",
                v.label(),
                label,
                r.mops,
                r.dram_reads_per_op,
                r.offload_posted
            );
            records.push(Record::new("new_structures", &scale, &v, &label, &r));
        }
    }
    save_records("new_structures", &records);
}
