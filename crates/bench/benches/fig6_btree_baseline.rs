//! Figure 6 — B+ tree baseline evaluation with YCSB-C.
//!
//! (a) operation throughput vs. host thread count for *host-only*,
//!     *hybrid-blocking*, *hybrid-nonblocking4*;
//! (b) average DRAM reads per operation.
//!
//! Paper shape targets (at 8 threads): hybrid-blocking ≈ +18% over
//! host-only; hybrid-nonblocking4 ≈ 2.11× host-only; DRAM reads/op
//! host-only ≈ 9 vs hybrid ≈ 3.

use hybrids_bench::{run_btree, save_records, ycsb_c, Record, Scale, Variant};

fn main() {
    let scale = Scale::from_env();
    let threads: Vec<u32> =
        [1u32, 2, 4, 8].into_iter().filter(|&t| t as usize <= scale.cfg.host_cores).collect();
    let variants = [Variant::HostOnly, Variant::HybridBtBlocking, Variant::HybridBtNonblocking(4)];
    let mut records = Vec::new();
    println!("fig6: B+ tree YCSB-C baseline (scale = {})", scale.name);
    println!("{:<22} {:>7} {:>12} {:>14}", "variant", "threads", "Mops/s", "DRAM reads/op");
    for &t in &threads {
        for v in variants {
            let r = run_btree(&scale, v, ycsb_c(&scale, t));
            println!("{:<22} {:>7} {:>12.4} {:>14.2}", v.label(), t, r.mops, r.dram_reads_per_op);
            records.push(Record::new("fig6", &scale, &v, "YCSB-C", &r));
        }
    }
    let last = *threads.last().unwrap();
    let at =
        |label: &str| records.iter().find(|r| r.variant == label && r.threads == last).unwrap();
    let host = at("host-only");
    let hb = at("hybrid-blocking");
    let hn4 = at("hybrid-nonblocking4");
    println!("\nheadline ratios at {last} threads:");
    println!("  hybrid-blocking / host-only     = {:.2}x  (paper ~1.18x)", hb.mops / host.mops);
    println!("  hybrid-nonblocking4 / host-only = {:.2}x  (paper ~2.11x)", hn4.mops / host.mops);
    println!(
        "  DRAM reads/op: host-only {:.1}, hybrid {:.1} (paper ~9 / ~3)",
        host.dram_reads_per_op, hb.dram_reads_per_op
    );
    save_records("fig6", &records);
}
