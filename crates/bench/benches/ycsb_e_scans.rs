//! YCSB-E range scans (extension — the paper evaluates point operations
//! only). Short scans (95%) with occasional inserts (5%) against the
//! B+ trees and skiplists.
//!
//! Expected shape: scans amortize one offload round trip over many
//! bottom-level reads executed close to memory, so the hybrid structures'
//! per-item cost drops well below the host-only/lock-free baselines' —
//! NMP turns from a latency play into a bandwidth play.

use hybrids_bench::{run_btree, run_skiplist, save_records, Record, Scale, Variant, SEED};
use workloads::{InsertDist, KeyDist, Mix, WorkloadSpec};

fn main() {
    let mut scale = Scale::from_env();
    scale.ops_per_thread = scale.ops_per_thread.min(200); // scans are ~50x heavier than points
    let wl = WorkloadSpec {
        seed: SEED ^ 0xE5CA,
        threads: scale.cfg.host_cores as u32,
        ops_per_thread: scale.ops_per_thread,
        mix: Mix::ycsb_e(),
        read_dist: KeyDist::Zipfian,
        insert_dist: InsertDist::UniformGap,
    };
    println!("ycsb-e: 95% scans (1-100 items) / 5% inserts (scale = {})", scale.name);
    println!("{:<22} {:>12} {:>16}", "variant", "Mops/s", "DRAM reads/op");
    let mut records = Vec::new();
    for v in [Variant::LockFree, Variant::HybridBlocking] {
        let r = run_skiplist(&scale, v, wl);
        println!("skiplist {:<13} {:>12.4} {:>16.2}", v.label(), r.mops, r.dram_reads_per_op);
        records.push(Record::new("ycsb_e", &scale, &v, "YCSB-E", &r));
    }
    for v in [Variant::HostOnly, Variant::HybridBtBlocking] {
        let r = run_btree(&scale, v, wl);
        println!("btree    {:<13} {:>12.4} {:>16.2}", v.label(), r.mops, r.dram_reads_per_op);
        records.push(Record::new("ycsb_e", &scale, &v, "YCSB-E", &r));
    }
    save_records("ycsb_e", &records);
}
