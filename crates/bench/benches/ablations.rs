//! Ablations of the design choices DESIGN.md calls out, plus the skew
//! study the paper sketches as future work (§7).
//!
//! 1. **Skew sweep** — zipfian θ ∈ {0, .5, .9, .99} on the skiplist:
//!    reproduces the paper's §7 observation that highly skewed workloads
//!    favor conventional cache-resident structures, eroding (and eventually
//!    crossing over) the hybrid's advantage.
//! 2. **Split-point sweep** — moving the hybrid skiplist's host-NMP split
//!    around the LLC-derived optimum of §3.3.
//! 3. **Off-chip link sweep** — the hybrid's edge as a function of the
//!    host↔memory serial-link latency that NMP cores avoid.
//! 4. **Node-layout ablation** — the lock-free baseline with conventional
//!    (packed, full-height-array) nodes vs the cache-aligned layout.

use std::sync::Arc;

use hybrids::driver::{run_index, RunSpec};
use hybrids::skiplist::{
    hybrid::split_for, lockfree::NodeLayout, HybridSkipList, LockFreeSkipList,
};
use hybrids_bench::{initial_pairs, run_skiplist, ycsb_c, LockFreeIndex, Scale, Variant, SEED};
use nmp_sim::Machine;
use workloads::{InsertDist, KeyDist, WorkloadSpec};

fn zipf_workload(scale: &Scale, theta_x100: u32) -> WorkloadSpec {
    WorkloadSpec {
        seed: SEED ^ theta_x100 as u64,
        threads: scale.cfg.host_cores as u32,
        ops_per_thread: scale.ops_per_thread,
        mix: workloads::Mix::ycsb_c(),
        read_dist: if theta_x100 == 0 {
            KeyDist::Uniform
        } else {
            KeyDist::ZipfianTheta { theta_x100 }
        },
        insert_dist: InsertDist::UniformGap,
    }
}

fn skew_sweep(scale: &Scale) {
    println!("\n== ablation 1: workload skew (paper §7's limitation) ==");
    println!(
        "{:<8} {:>18} {:>22} {:>8}",
        "theta", "lock-free Mops/s", "hybrid-nb4 Mops/s", "ratio"
    );
    for theta in [0u32, 50, 90, 99] {
        let wl = zipf_workload(scale, theta);
        let lf = run_skiplist(scale, Variant::LockFree, wl);
        let hy = run_skiplist(scale, Variant::HybridNonblocking(4), wl);
        println!(
            "{:<8} {:>18.4} {:>22.4} {:>8.2}",
            theta as f64 / 100.0,
            lf.mops,
            hy.mops,
            hy.mops / lf.mops
        );
    }
    println!("(expect the ratio to shrink as skew grows: hot paths fit the host cache)");
}

fn split_sweep(scale: &Scale) {
    println!("\n== ablation 2: host-NMP split point (hybrid skiplist) ==");
    let ks = scale.skiplist_keyspace();
    let (total, nh_star) = split_for(ks.total_initial() as u64, scale.cfg.l2.size_bytes as u64);
    println!("LLC-derived optimum: nmp_height = {nh_star} of {total} levels");
    println!("{:<12} {:>14} {:>16} {:>16}", "nmp_height", "Mops/s", "DRAM reads/op", "host bytes");
    for delta in [-2i32, -1, 0, 1, 2] {
        let nh = (nh_star as i32 + delta).clamp(1, total as i32 - 1) as u32;
        let machine = Machine::new(scale.cfg.clone());
        let sl = HybridSkipList::new(Arc::clone(&machine), ks, total, nh, SEED, 4);
        sl.populate(initial_pairs(&ks));
        let spec = RunSpec {
            workload: ycsb_c(scale, scale.cfg.host_cores as u32),
            warmup_per_thread: scale.warmup_per_thread,
            inflight: 4,
            app_footprint_lines: 0,
        };
        let r = run_index(&machine, &sl, &ks, &spec);
        println!(
            "{:<12} {:>14.4} {:>16.2} {:>16}",
            format!("{nh}{}", if nh == nh_star { " (*)" } else { "" }),
            r.mops,
            r.dram_reads_per_op,
            sl.host_bytes()
        );
    }
    println!("(trade-off: each level moved to the host costs LLC capacity but removes");
    println!(" ~3 NMP reads/op; with deep pipelining the NMP core is the bottleneck, so");
    println!(" smaller NMP portions keep winning until the host portion overflows memory.");
    println!(" The LLC-derived split (*) is the paper's cache-residency optimum, which");
    println!(" matters most for blocking calls and pollution-heavy co-running workloads)");
}

fn link_sweep(scale: &Scale) {
    println!("\n== ablation 3: off-chip host link latency ==");
    println!(
        "{:<12} {:>18} {:>22} {:>8}",
        "link (ns)", "lock-free Mops/s", "hybrid-nb4 Mops/s", "ratio"
    );
    for link_ns in [0.0, 8.0, 16.0, 32.0] {
        let mut s = scale.clone();
        s.cfg.host_link_ns = link_ns;
        let wl = ycsb_c(&s, s.cfg.host_cores as u32);
        let lf = run_skiplist(&s, Variant::LockFree, wl);
        let hy = run_skiplist(&s, Variant::HybridNonblocking(4), wl);
        println!("{:<12} {:>18.4} {:>22.4} {:>8.2}", link_ns, lf.mops, hy.mops, hy.mops / lf.mops);
    }
    println!("(the NMP advantage is precisely the traffic that skips this link)");
}

fn layout_ablation(scale: &Scale) {
    println!("\n== ablation 4: lock-free baseline node layout ==");
    let ks = scale.skiplist_keyspace();
    let (total, _) = split_for(ks.total_initial() as u64, scale.cfg.l2.size_bytes as u64);
    println!("{:<16} {:>14} {:>16}", "layout", "Mops/s", "DRAM reads/op");
    for (name, layout) in
        [("packed", NodeLayout::Packed), ("cache-aligned", NodeLayout::CacheAligned)]
    {
        let machine = Machine::new(scale.cfg.clone());
        let sl = LockFreeSkipList::with_layout(Arc::clone(&machine), total, SEED, layout);
        sl.populate(initial_pairs(&ks));
        let idx = Arc::new(LockFreeIndex(Arc::new(sl)));
        let spec = RunSpec {
            workload: ycsb_c(scale, scale.cfg.host_cores as u32),
            warmup_per_thread: scale.warmup_per_thread,
            inflight: 1,
            app_footprint_lines: 0,
        };
        let r = run_index(&machine, &idx, &ks, &spec);
        println!("{:<16} {:>14.4} {:>16.2}", name, r.mops, r.dram_reads_per_op);
    }
    println!("(the paper's baseline uses the conventional packed layout; the aligned");
    println!(" variant shows how much of the hybrid's edge is pure node layout)");
}

fn main() {
    let mut scale = Scale::from_env();
    // Ablations are extensions: keep them cheap.
    scale.ops_per_thread = scale.ops_per_thread.min(300);
    println!("ablations (scale = {})", scale.name);
    skew_sweep(&scale);
    split_sweep(&scale);
    link_sweep(&scale);
    layout_ablation(&scale);
}
