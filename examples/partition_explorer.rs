//! Partition explorer: visualize how hybrid data structures split across
//! the host cache and the NMP partitions.
//!
//! Prints the host-NMP split point chosen for a hybrid skiplist and a
//! hybrid B+ tree (§3.3/§3.4), the resulting sizes against the LLC, and
//! per-partition occupancy of the NMP vaults.
//!
//! ```text
//! cargo run --release --example partition_explorer
//! ```

use std::sync::Arc;

use hybrids::skiplist::hybrid::split_for;
use hybrids_repro::prelude::*;

fn bar(frac: f64, width: usize) -> String {
    let n = ((frac * width as f64).round() as usize).min(width);
    format!("[{}{}]", "#".repeat(n), " ".repeat(width - n))
}

fn main() {
    let mut cfg = Config::paper();
    cfg.l1.size_bytes = 8 * 1024;
    cfg.l2.size_bytes = 32 * 1024;
    cfg.host_heap_bytes = 24 * 1024 * 1024;
    cfg.part_heap_bytes = 8 * 1024 * 1024;
    let llc = cfg.l2.size_bytes as u64;
    let parts = cfg.nmp_partitions() as u32;

    println!("machine: LLC = {} kB, {} NMP partitions\n", llc / 1024, parts);

    // ---- hybrid skiplist ----
    let n: u32 = 1 << 16;
    let machine = Machine::new(cfg.clone());
    let ks = KeySpace::new(n, parts, 4096);
    let (total, nh) = split_for(n as u64, llc);
    println!("hybrid skiplist over {n} keys:");
    println!(
        "  total levels {total}; levels {nh}..{} host-managed (top {})",
        total - 1,
        total - nh
    );
    println!("  expected host nodes: ~{} (one per key with height > {nh})", n >> nh);
    let sl = HybridSkipList::new(Arc::clone(&machine), ks, total, nh, 7, 1);
    sl.populate((0..ks.total_initial()).map(|i| (ks.initial_key(i), i)));
    let host_bytes = sl.host_bytes();
    println!(
        "  actual host portion: {} kB vs LLC {} kB  {}",
        host_bytes / 1024,
        llc / 1024,
        bar(host_bytes as f64 / llc as f64, 32)
    );
    println!("  NMP partition occupancy:");
    for p in 0..parts as usize {
        let b = machine.part_arena(p).live_bytes();
        println!(
            "    vault {p}: {:>6} kB {}",
            b / 1024,
            bar(b as f64 / machine.part_arena(p).live_bytes().max(1) as f64 * 0.9, 24)
        );
    }
    sl.check_invariants();

    // ---- hybrid B+ tree ----
    let n: u32 = 200_000 / parts * parts;
    let machine = Machine::new(cfg.clone());
    let ks = KeySpace::new(n, parts, 4096);
    let pairs: Vec<(Key, Value)> =
        (0..ks.total_initial()).map(|i| (ks.initial_key(i), i)).collect();
    let bt = HybridBTree::new(Arc::clone(&machine), &pairs, 0.5, 1);
    println!("\nhybrid B+ tree over {n} keys:");
    println!(
        "  height {}; levels {}..{} host-managed",
        bt.height(),
        bt.last_host_level(),
        bt.height() - 1
    );
    let host_bytes = machine.host_arena().live_bytes();
    println!(
        "  host portion: {} kB vs LLC {} kB  {}",
        host_bytes / 1024,
        llc / 1024,
        bar(host_bytes as f64 / llc as f64, 32)
    );
    println!("  NMP partition occupancy (equal subtree runs, key-contiguous):");
    let max_b = (0..parts as usize).map(|p| machine.part_arena(p).live_bytes()).max().unwrap();
    for p in 0..parts as usize {
        let b = machine.part_arena(p).live_bytes();
        println!("    vault {p}: {:>6} kB {}", b / 1024, bar(b as f64 / max_b as f64, 24));
    }
    bt.check_invariants();

    // Show that traversals actually stop touching DRAM for the host part.
    let mut sim = machine.simulation();
    bt.spawn_services(&mut sim);
    let bt2 = Arc::clone(&bt);
    sim.spawn("probe", ThreadKind::Host { core: 0 }, move |ctx| {
        // Warm the top levels with a few lookups...
        for i in 0..2000u32 {
            let _ = bt2.execute(ctx, Op::Read(ks.initial_key(i * 97 % ks.total_initial())));
        }
        let before = ctx.mem().snapshot();
        for i in 0..200u32 {
            let _ = bt2.execute(ctx, Op::Read(ks.initial_key(i * 131 % ks.total_initial())));
        }
        let delta = ctx.mem().snapshot().delta_since(&before);
        println!(
            "\nwarm lookups: {:.2} host DRAM reads/op, {:.2} NMP DRAM reads/op \
             (host levels live in cache; leaves live near memory)",
            delta.host_dram_reads() as f64 / 200.0,
            delta.nmp_dram_reads() as f64 / 200.0
        );
    });
    sim.run();
}
