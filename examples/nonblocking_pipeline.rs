//! Non-blocking NMP calls (§3.5): drive the `issue`/`poll` API by hand and
//! watch offloaded operations overlap.
//!
//! A single host thread issues a burst of reads against a hybrid skiplist,
//! first with blocking calls (each offload stalls the thread), then with a
//! 4-deep pipeline of non-blocking calls. The example prints each
//! operation's issue/completion times and the speedup.
//!
//! ```text
//! cargo run --release --example nonblocking_pipeline
//! ```

use std::sync::Arc;

use hybrids::skiplist::hybrid::split_for;
use hybrids_repro::prelude::*;
use parking_lot::Mutex;

const BURST: usize = 12;

fn machine_and_index() -> (Arc<Machine>, Arc<HybridSkipList>, KeySpace) {
    let cfg = Config::tiny();
    let llc = cfg.l2.size_bytes as u64;
    let parts = cfg.nmp_partitions() as u32;
    let machine = Machine::new(cfg);
    let n: u32 = 1 << 13;
    let ks = KeySpace::new(n, parts, 1024);
    let (total, nh) = split_for(n as u64, llc);
    let sl = HybridSkipList::new(Arc::clone(&machine), ks, total, nh, 9, 4);
    sl.populate((0..ks.total_initial()).map(|i| (ks.initial_key(i), i)));
    (machine, sl, ks)
}

/// Returns (per-op spans, makespan).
fn run(inflight: usize) -> (Vec<(u64, u64)>, u64) {
    let (machine, sl, ks) = machine_and_index();
    let spans = Arc::new(Mutex::new(vec![(0u64, 0u64); BURST]));
    let mut sim = machine.simulation();
    sl.spawn_services(&mut sim);
    let spans2 = Arc::clone(&spans);
    sim.spawn("host-0", ThreadKind::Host { core: 0 }, move |ctx| {
        let key = |i: usize| ks.initial_key((i as u32 * 701 + 13) % ks.total_initial());
        if inflight == 1 {
            for i in 0..BURST {
                let t0 = ctx.now();
                let r = sl.execute(ctx, Op::Read(key(i)));
                assert!(r.ok);
                spans2.lock()[i] = (t0, ctx.now());
            }
            return;
        }
        // Pipeline: keep up to `inflight` operations outstanding.
        let mut lanes: Vec<Option<(usize, u64, _)>> = (0..inflight).map(|_| None).collect();
        let mut next = 0;
        let mut done = 0;
        while done < BURST {
            for (lane, slot) in lanes.iter_mut().enumerate() {
                match slot.take() {
                    None if next < BURST => {
                        let t0 = ctx.now();
                        match sl.issue(ctx, lane, Op::Read(key(next))) {
                            Issued::Done(r) => {
                                assert!(r.ok);
                                spans2.lock()[next] = (t0, ctx.now());
                                done += 1;
                            }
                            Issued::Pending(p) => *slot = Some((next, t0, p)),
                        }
                        next += 1;
                    }
                    None => {}
                    Some((i, t0, mut p)) => match sl.poll(ctx, &mut p) {
                        PollOutcome::Done(r) => {
                            assert!(r.ok);
                            spans2.lock()[i] = (t0, ctx.now());
                            done += 1;
                        }
                        PollOutcome::Pending => *slot = Some((i, t0, p)),
                    },
                }
            }
            ctx.idle(16);
        }
    });
    let out = sim.run();
    let spans = spans.lock().clone();
    (spans, out.makespan())
}

fn render(label: &str, spans: &[(u64, u64)], makespan: u64) {
    println!("\n{label} — makespan {makespan} cycles");
    let t0 = spans.iter().map(|s| s.0).min().unwrap();
    let t1 = spans.iter().map(|s| s.1).max().unwrap();
    let width = 60usize;
    let scale = (t1 - t0).max(1) as f64 / width as f64;
    for (i, &(a, b)) in spans.iter().enumerate() {
        let s = ((a - t0) as f64 / scale) as usize;
        let e = (((b - t0) as f64 / scale).ceil() as usize).clamp(s + 1, width);
        let mut row = vec![b'.'; width];
        for c in row.iter_mut().take(e).skip(s) {
            *c = b'=';
        }
        println!("  op{i:<2} {}", String::from_utf8(row).unwrap());
    }
}

fn main() {
    println!("{BURST} hybrid-skiplist reads from one host thread");
    let (b_spans, b_make) = run(1);
    render("blocking NMP calls (Fig. 4a)", &b_spans, b_make);
    let (n_spans, n_make) = run(4);
    render("non-blocking NMP calls, 4 in flight (Fig. 4b)", &n_spans, n_make);
    println!("\npipelining speedup on this burst: {:.2}x", b_make as f64 / n_make as f64);
}
