//! OLTP index scenario: the paper's motivating use case (§1).
//!
//! An in-memory OLTP system keeps a B+ tree index over a table and serves
//! high volumes of short key-based lookups with occasional inserts and
//! deletes. This example builds the same index twice — as a conventional
//! *host-only* seqlock B+ tree and as the paper's *hybrid* B+ tree — and
//! runs identical transaction mixes against both, comparing throughput and
//! memory traffic.
//!
//! ```text
//! cargo run --release --example oltp_index
//! ```

use std::sync::Arc;

use hybrids_repro::prelude::*;

/// One simulated "table": 60k orders, indexed by order id.
const ORDERS: u32 = 60_000;

fn build_machine() -> (Arc<Machine>, KeySpace, Vec<(Key, Value)>) {
    let mut cfg = Config::paper();
    // Scale the LLC with the table so the experiment runs in seconds while
    // keeping the index ≫ LLC, as in real OLTP deployments (§1).
    cfg.l1.size_bytes = 4 * 1024;
    cfg.l2.size_bytes = 16 * 1024;
    cfg.host_heap_bytes = 24 * 1024 * 1024;
    cfg.part_heap_bytes = 4 * 1024 * 1024;
    let parts = cfg.nmp_partitions() as u32;
    let machine = Machine::new(cfg);
    let n = ORDERS / parts * parts;
    let ks = KeySpace::new(n, parts, 8192);
    // value = "row id" of the order row.
    let pairs: Vec<(Key, Value)> =
        (0..ks.total_initial()).map(|i| (ks.initial_key(i), 0x100_0000 | i)).collect();
    (machine, ks, pairs)
}

fn workload(threads: u32) -> WorkloadSpec {
    WorkloadSpec {
        seed: 2022,
        threads,
        ops_per_thread: 400,
        // Typical OLTP point-query-heavy mix: 80% lookups, 10% new orders,
        // 10% cancellations.
        mix: Mix::read_insert_remove(80, 10, 10),
        read_dist: KeyDist::Zipfian,
        insert_dist: InsertDist::UniformGap,
    }
}

fn report(name: &str, r: &RunResult) {
    println!(
        "  {name:<18} {:>9.4} Mops/s   {:>6.2} DRAM reads/op   {:>7.1} nJ/op",
        r.mops, r.dram_reads_per_op, r.energy_nj_per_op
    );
}

fn main() {
    let threads = 8;
    println!("OLTP order index: {ORDERS} rows, {threads} worker threads, 80-10-10 mix\n");

    // Conventional index: everything in host memory.
    let (machine, ks, pairs) = build_machine();
    let host_only = HostBTree::new(Arc::clone(&machine), &pairs, 0.5);
    println!("host-only B+ tree: height {}", host_only.height());
    let spec = RunSpec {
        workload: workload(threads),
        warmup_per_thread: 150,
        inflight: 1,
        app_footprint_lines: 0,
    };
    let r_host = run_index(&machine, &host_only, &ks, &spec);
    host_only.check_invariants();

    // Hybrid index: top levels pinned in cache, lower levels near memory.
    let (machine, ks, pairs) = build_machine();
    let hybrid = HybridBTree::new(Arc::clone(&machine), &pairs, 0.5, 4);
    println!(
        "hybrid B+ tree:    height {}, host-managed levels {}..{}",
        hybrid.height(),
        hybrid.last_host_level(),
        hybrid.height() - 1
    );
    let r_hyb = run_index(&machine, &hybrid, &ks, &spec);
    hybrid.check_invariants();

    // Hybrid with non-blocking NMP calls (4 in flight per worker, §3.5).
    let (machine, ks, pairs) = build_machine();
    let hybrid_nb = HybridBTree::new(Arc::clone(&machine), &pairs, 0.5, 4);
    let spec_nb = RunSpec { inflight: 4, ..spec };
    let r_nb = run_index(&machine, &hybrid_nb, &ks, &spec_nb);
    hybrid_nb.check_invariants();

    println!("\nresults:");
    report("host-only", &r_host);
    report("hybrid-blocking", &r_hyb);
    report("hybrid-nonblock4", &r_nb);
    println!(
        "\nhybrid cuts DRAM reads/op by {:.1}x; non-blocking calls lift throughput to {:.2}x host-only",
        r_host.dram_reads_per_op / r_hyb.dram_reads_per_op.max(1e-9),
        r_nb.mops / r_host.mops
    );
}
