//! Quickstart: build a simulated NMP machine, populate a hybrid skiplist,
//! and run a few operations from concurrent host threads.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use hybrids_repro::prelude::*;

fn main() {
    // A small machine: 4 host cores, 2 NMP partitions (see Config::paper()
    // for the full Table 1 machine).
    let cfg = Config::tiny();
    println!(
        "machine: {} host cores, {} NMP partitions, {} kB LLC",
        cfg.host_cores,
        cfg.nmp_partitions(),
        cfg.l2.size_bytes / 1024
    );
    let machine = Machine::new(cfg);

    // 1024 initial keys over 2 partitions, with tail headroom for inserts.
    let ks = KeySpace::new(1024, 2, 256);

    // Hybrid skiplist: 11 total levels, bottom 5 NMP-managed.
    let index = HybridSkipList::new(Arc::clone(&machine), ks, 11, 5, 42, 4);
    index.populate((0..ks.total_initial()).map(|i| (ks.initial_key(i), i * 10)));
    println!(
        "hybrid skiplist: {} keys, {} total levels ({} host / {} NMP), host portion {} B",
        ks.total_initial(),
        index.total_levels(),
        index.host_levels(),
        index.nmp_height(),
        index.host_bytes()
    );

    // Run concurrent operations inside the simulator.
    let mut sim = machine.simulation();
    index.spawn_services(&mut sim); // one flat-combining NMP core per partition
    for core in 0..4usize {
        let index = Arc::clone(&index);
        sim.spawn(format!("host-{core}"), ThreadKind::Host { core }, move |ctx| {
            let base = core as u32 * 100;
            for i in 0..50u32 {
                let key = ks.initial_key((base + i * 7) % ks.total_initial());
                match i % 3 {
                    0 => {
                        let r = index.execute(ctx, Op::Read(key));
                        assert!(r.ok);
                    }
                    1 => {
                        let _ = index.execute(ctx, Op::Update(key, i));
                    }
                    _ => {
                        // Gap key: a fresh insert between existing keys.
                        let _ = index.execute(ctx, Op::Insert(key + 1 + core as u32, i));
                    }
                }
            }
        });
    }
    let outcome = sim.run();

    let stats = machine.mem().snapshot();
    println!("\nsimulated {} cycles (4 host threads)", outcome.makespan());
    println!("  L1 hit rate: {:.1}%", stats.l1.hit_rate() * 100.0);
    println!("  L2 hit rate: {:.1}%", stats.l2.hit_rate() * 100.0);
    println!(
        "  DRAM reads: {} (host {}, NMP {})",
        stats.dram_reads(),
        stats.host_dram_reads(),
        stats.nmp_dram_reads()
    );
    println!("  MMIO (publication list) ops: {}", stats.mmio_reads + stats.mmio_writes);
    println!("  modeled energy: {:.1} nJ", stats.energy_nj());

    index.check_invariants();
    println!("\ninvariants OK; {} live keys", index.collect().len());
}
