//! # hybrids-repro — reproduction of HybriDS (SPAA '22)
//!
//! Umbrella crate tying together the three layers of the reproduction:
//!
//! * [`nmp_sim`] — the deterministic near-memory-processing architecture
//!   simulator (host caches, vaulted DRAM, NMP cores, scratchpad MMIO);
//! * [`workloads`] — deterministic YCSB-style workload generation;
//! * [`hybrids`] — the concurrent data structures: the paper's hybrid
//!   skiplist and hybrid B+ tree plus all evaluated baselines.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! fidelity argument, and `EXPERIMENTS.md` for paper-vs-measured results.
//! Runnable walk-throughs live in `examples/`; the figure/table harnesses
//! are `cargo bench` targets in `crates/bench`.

pub use hybrids;
pub use nmp_sim;
pub use workloads;

/// Everything needed for typical use, in one import.
pub mod prelude {
    pub use hybrids::api::{Issued, OpResult, PollOutcome, SimIndex};
    pub use hybrids::btree::{HostBTree, HybridBTree};
    pub use hybrids::driver::{run_index, RunResult, RunSpec};
    pub use hybrids::hashmap::HybridHashMap;
    pub use hybrids::pqueue::HybridPqueue;
    pub use hybrids::skiplist::{HybridSkipList, LockFreeSkipList, NmpSkipList};
    pub use nmp_sim::{Config, Machine, Simulation, ThreadCtx, ThreadKind};
    pub use workloads::{InsertDist, Key, KeyDist, KeySpace, Mix, Op, Value, WorkloadSpec};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_core_types() {
        use crate::prelude::*;
        let cfg = Config::tiny();
        cfg.validate();
        let _ = Mix::ycsb_c();
    }
}
