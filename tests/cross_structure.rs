//! Integration: every index structure implements the same semantics.
//!
//! A single simulated host thread applies one operation sequence to all
//! five structures; per-operation results and final contents must agree
//! with a `BTreeMap` oracle — and therefore with each other.

use std::collections::BTreeMap;
use std::sync::Arc;

use hybrids_repro::prelude::*;
use parking_lot::Mutex;
use workloads::Rng;

const N: u32 = 512;
const PARTS: u32 = 2;

fn keyspace() -> KeySpace {
    KeySpace::new(N, PARTS, 256)
}

fn op_sequence(seed: u64, len: usize, ks: &KeySpace) -> Vec<Op> {
    let mut rng = Rng::new(seed);
    (0..len)
        .map(|_| {
            let existing = ks.initial_key(rng.below(N as u64) as u32);
            match rng.below(5) {
                0 => Op::Insert(existing + 1 + rng.below(6) as u32, rng.next_u32() | 1),
                1 => Op::Insert(existing, rng.next_u32() | 1), // mostly duplicates
                2 => Op::Remove(existing),
                3 => Op::Update(existing, rng.next_u32() | 1),
                _ => Op::Read(existing),
            }
        })
        .collect()
}

fn oracle_apply(model: &mut BTreeMap<Key, Value>, op: Op) -> (bool, Value) {
    match op {
        Op::Read(k) => match model.get(&k) {
            Some(&v) => (true, v),
            None => (false, 0),
        },
        Op::Insert(k, v) => {
            if let std::collections::btree_map::Entry::Vacant(e) = model.entry(k) {
                e.insert(v);
                (true, 0)
            } else {
                (false, 0)
            }
        }
        Op::Remove(k) => (model.remove(&k).is_some(), 0),
        Op::Update(k, v) => {
            if let Some(slot) = model.get_mut(&k) {
                *slot = v;
                (true, 0)
            } else {
                (false, 0)
            }
        }
        Op::Scan(k, len) => {
            let n = model.range(k..).take(len as usize).count() as u32;
            (n > 0, n)
        }
        // Cross-structure mixes never generate extract-min: only the
        // pqueue supports it (see tests/proptest_oracle.rs).
        Op::ExtractMin => (false, 0),
    }
}

/// Run `ops` against `index` on one host thread; return per-op results and
/// the machine (for final inspection).
fn drive<S: SimIndex>(machine: &Arc<Machine>, index: &Arc<S>, ops: Vec<Op>) -> Vec<(bool, Value)> {
    let results = Arc::new(Mutex::new(Vec::new()));
    let mut sim = machine.simulation();
    index.spawn_services(&mut sim);
    let index = Arc::clone(index);
    let results2 = Arc::clone(&results);
    sim.spawn("h0", ThreadKind::Host { core: 0 }, move |ctx| {
        for &op in &ops {
            let r = index.execute(ctx, op);
            let value = if matches!(op, Op::Read(_)) { r.value } else { 0 };
            results2.lock().push((r.ok, value));
        }
    });
    sim.run();
    let r = results.lock().clone();
    r
}

fn check_against_oracle(name: &str, got: &[(bool, Value)], ops: &[Op], initial: &[(Key, Value)]) {
    let mut model: BTreeMap<Key, Value> = initial.iter().copied().collect();
    for (i, (&op, &(ok, value))) in ops.iter().zip(got).enumerate() {
        let (eok, evalue) = oracle_apply(&mut model, op);
        assert_eq!(
            (ok, value),
            (eok, if matches!(op, Op::Read(_)) { evalue } else { 0 }),
            "{name}: op {i} ({op:?}) diverged from oracle"
        );
    }
}

fn final_model(ops: &[Op], initial: &[(Key, Value)]) -> BTreeMap<Key, Value> {
    let mut model: BTreeMap<Key, Value> = initial.iter().copied().collect();
    for &op in ops {
        let _ = oracle_apply(&mut model, op);
    }
    model
}

#[test]
fn all_structures_agree_with_oracle() {
    let ks = keyspace();
    let initial: Vec<(Key, Value)> =
        (0..ks.total_initial()).map(|i| (ks.initial_key(i), i + 1)).collect();
    let ops = op_sequence(31337, 400, &ks);
    let expect = final_model(&ops, &initial);

    // Hybrid skiplist.
    {
        let m = Machine::new(Config::tiny());
        let sl = HybridSkipList::new(Arc::clone(&m), ks, 11, 5, 99, 1);
        sl.populate(initial.clone());
        let got = drive(&m, &sl, ops.clone());
        check_against_oracle("hybrid-skiplist", &got, &ops, &initial);
        sl.check_invariants();
        assert_eq!(sl.collect().into_iter().collect::<BTreeMap<_, _>>(), expect);
    }
    // NMP-based skiplist.
    {
        let m = Machine::new(Config::tiny());
        let sl = NmpSkipList::new(Arc::clone(&m), ks, 9, 99, 1);
        sl.populate(initial.clone());
        let got = drive(&m, &sl, ops.clone());
        check_against_oracle("nmp-skiplist", &got, &ops, &initial);
        sl.check_invariants();
        assert_eq!(sl.collect().into_iter().collect::<BTreeMap<_, _>>(), expect);
    }
    // Lock-free skiplist (both layouts).
    for layout in [
        hybrids::skiplist::lockfree::NodeLayout::CacheAligned,
        hybrids::skiplist::lockfree::NodeLayout::Packed,
    ] {
        let m = Machine::new(Config::tiny());
        let sl = Arc::new(hybrids::skiplist::LockFreeSkipList::with_layout(
            Arc::clone(&m),
            11,
            99,
            layout,
        ));
        sl.populate(initial.clone());
        let results = Arc::new(Mutex::new(Vec::new()));
        let mut sim = m.simulation();
        let sl2 = Arc::clone(&sl);
        let ops2 = ops.clone();
        let results2 = Arc::clone(&results);
        sim.spawn("h0", ThreadKind::Host { core: 0 }, move |ctx| {
            for &op in &ops2 {
                let r = match op {
                    Op::Read(k) => match sl2.read(ctx, k) {
                        Some((_, v)) => (true, v),
                        None => (false, 0),
                    },
                    Op::Insert(k, v) => (sl2.insert(ctx, k, v), 0),
                    Op::Remove(k) => (sl2.remove(ctx, k), 0),
                    Op::Update(k, v) => (sl2.update(ctx, k, v), 0),
                    Op::Scan(k, len) => {
                        let n = sl2.scan(ctx, k, len as u32);
                        (n > 0, 0)
                    }
                    Op::ExtractMin => (false, 0),
                };
                results2.lock().push(r);
            }
        });
        sim.run();
        check_against_oracle(&format!("lock-free {layout:?}"), &results.lock(), &ops, &initial);
        sl.check_invariants();
        assert_eq!(sl.collect().into_iter().collect::<BTreeMap<_, _>>(), expect);
    }
    // Host-only B+ tree.
    {
        let m = Machine::new(Config::tiny());
        let t = HostBTree::new(Arc::clone(&m), &initial, 0.6);
        let got = drive(&m, &t, ops.clone());
        check_against_oracle("host-btree", &got, &ops, &initial);
        t.check_invariants();
        assert_eq!(t.collect().into_iter().collect::<BTreeMap<_, _>>(), expect);
    }
    // Hybrid B+ tree.
    {
        let m = Machine::new(Config::tiny());
        let t = HybridBTree::with_budget(Arc::clone(&m), &initial, 0.6, 1, 4 * 1024);
        let got = drive(&m, &t, ops.clone());
        check_against_oracle("hybrid-btree", &got, &ops, &initial);
        t.check_invariants();
        assert_eq!(t.collect().into_iter().collect::<BTreeMap<_, _>>(), expect);
    }
}

#[test]
fn structures_agree_under_split_heavy_inserts() {
    // Monotone tail inserts (max splits for the B+ trees).
    let ks = keyspace();
    let initial: Vec<(Key, Value)> =
        (0..ks.total_initial()).map(|i| (ks.initial_key(i), 7)).collect();
    let mut ops = Vec::new();
    for c in 0..120u32 {
        ops.push(Op::Insert(ks.tail_key(c % PARTS, c / PARTS), c));
        if c % 3 == 0 {
            ops.push(Op::Read(ks.tail_key(c % PARTS, c / PARTS)));
        }
    }
    let expect = final_model(&ops, &initial);

    let m = Machine::new(Config::tiny());
    let bt = HybridBTree::with_budget(Arc::clone(&m), &initial, 1.0, 1, 4 * 1024);
    let got = drive(&m, &bt, ops.clone());
    check_against_oracle("hybrid-btree split-heavy", &got, &ops, &initial);
    bt.check_invariants();
    assert_eq!(bt.collect().into_iter().collect::<BTreeMap<_, _>>(), expect);

    let m = Machine::new(Config::tiny());
    let sl = HybridSkipList::new(Arc::clone(&m), ks, 11, 5, 99, 1);
    sl.populate(initial.clone());
    let got = drive(&m, &sl, ops.clone());
    check_against_oracle("hybrid-skiplist split-heavy", &got, &ops, &initial);
    sl.check_invariants();
    assert_eq!(sl.collect().into_iter().collect::<BTreeMap<_, _>>(), expect);
}
