//! Whole-stack byte-identity across engine shard counts.
//!
//! The sharded engine (`Config::with_shards`) must be observationally
//! indistinguishable from the legacy sequential scheduler for real hybrid
//! structures, not just hand-rolled engine workloads: same `RunResult`
//! (minus wall-clock fields), same stats snapshot, same analysis report,
//! and a byte-identical Chrome-trace export, for the skip list, B+ tree,
//! and priority queue in both blocking (`inflight = 1`) and lane-pipelined
//! (`inflight = 4`) modes.
//!
//! This is the acceptance gate for the shard refactor: if any conservative
//! barrier, deferred-replay merge, or frontier rule is wrong, some counter
//! or trace byte here diverges.

use std::sync::Arc;

use hybrids::driver::{run_index, RunResult, RunSpec};
use hybrids_repro::prelude::*;
use nmp_sim::trace::TraceSink;
use nmp_sim::Policy;

/// Workload shared by the index structures (skip list, B+ tree).
fn spec(seed: u64, inflight: usize) -> RunSpec {
    RunSpec {
        workload: WorkloadSpec {
            seed,
            threads: 4,
            ops_per_thread: 50,
            mix: Mix::read_insert_remove(50, 30, 20),
            read_dist: KeyDist::Zipfian,
            insert_dist: InsertDist::UniformGap,
        },
        warmup_per_thread: 10,
        inflight,
        app_footprint_lines: 0,
    }
}

/// Fold one run's observable artifacts into a comparison string, dropping
/// the two wall-clock-derived `RunResult` fields (everything else is
/// simulated-time and must reproduce exactly).
fn fold(m: &Arc<Machine>, tracer: &Arc<nmp_sim::trace::Tracer>, r: Option<RunResult>) -> String {
    let mut fp = String::new();
    if let Some(mut r) = r {
        r.wall_ms = 0.0;
        r.sim_cycles_per_sec = 0.0;
        fp.push_str(&format!("result={r:?}\n"));
    }
    fp.push_str(&format!("snapshot={:?}\n", m.mem().snapshot()));
    fp.push_str(&format!("summary={:?}\n", tracer.summary()));
    fp.push_str(&TraceSink::chrome_json(tracer));
    fp.push('\n');
    fp
}

fn skiplist_fp(shards: usize, inflight: usize, policy: Policy) -> String {
    let ks = KeySpace::new(512, 2, 256);
    let m = Machine::new(Config::tiny().with_shards(shards).with_policy(policy));
    let tracer = m.attach_tracer();
    let analysis = m.attach_analysis();
    let sl = HybridSkipList::new(Arc::clone(&m), ks, 10, 4, 42, inflight.max(1));
    sl.populate((0..ks.total_initial()).map(|i| (ks.initial_key(i), i)));
    let r = run_index(&m, &sl, &ks, &spec(42, inflight));
    let mut fp = fold(&m, &tracer, Some(r));
    fp.push_str(&format!("report={:?}\n", analysis.report()));
    fp
}

fn btree_fp(shards: usize, inflight: usize, policy: Policy) -> String {
    let ks = KeySpace::new(512, 2, 384);
    let m = Machine::new(Config::tiny().with_shards(shards).with_policy(policy));
    let tracer = m.attach_tracer();
    let analysis = m.attach_analysis();
    let pairs: Vec<(Key, Value)> =
        (0..ks.total_initial()).map(|i| (ks.initial_key(i), i)).collect();
    let t = HybridBTree::new(Arc::clone(&m), &pairs, 0.5, inflight.max(1));
    let r = run_index(&m, &t, &ks, &spec(77, inflight));
    t.check_invariants();
    let mut fp = fold(&m, &tracer, Some(r));
    fp.push_str(&format!("report={:?}\n", analysis.report()));
    fp
}

fn pqueue_fp(shards: usize, inflight: usize, policy: Policy) -> String {
    let ks = KeySpace::new(256, 2, 128);
    let m = Machine::new(Config::tiny().with_shards(shards).with_policy(policy));
    let tracer = m.attach_tracer();
    let analysis = m.attach_analysis();
    let pq = HybridPqueue::new(Arc::clone(&m), ks, 8, 5, inflight.max(1));
    let initial: Vec<(Key, Value)> =
        (0..ks.total_initial() / 2).map(|i| (ks.initial_key(i * 2), i)).collect();
    pq.populate(&initial);
    let mut sim = m.simulation();
    pq.spawn_services(&mut sim);
    for core in 0..4usize {
        let pq = Arc::clone(&pq);
        let ks2 = ks;
        let mut rng = workloads::Rng::new(900 + core as u64);
        let ops: Vec<Op> = (0..40)
            .map(|_| {
                if rng.below(2) == 0 {
                    Op::ExtractMin
                } else {
                    let base = ks2.initial_key(rng.below(ks2.total_initial() as u64) as u32);
                    Op::Insert(base + 1 + rng.below(6) as u32, rng.next_u32() | 1)
                }
            })
            .collect();
        sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| {
            if inflight <= 1 {
                for &op in &ops {
                    let _ = pq.execute(ctx, op);
                }
                return;
            }
            // Lane-pipelined issue/poll, same shape as the conformance
            // harness's driver.
            let mut lanes: Vec<Option<<HybridPqueue as SimIndex>::Pending>> =
                (0..inflight).map(|_| None).collect();
            let mut next = 0;
            let mut done = 0;
            while done < ops.len() {
                for (lane, slot) in lanes.iter_mut().enumerate() {
                    match slot.take() {
                        None if next < ops.len() => {
                            let op = ops[next];
                            next += 1;
                            match pq.issue(ctx, lane, op) {
                                Issued::Done(_) => done += 1,
                                Issued::Pending(p) => *slot = Some(p),
                            }
                        }
                        None => {}
                        Some(mut p) => match pq.poll(ctx, &mut p) {
                            PollOutcome::Done(_) => done += 1,
                            PollOutcome::Pending => *slot = Some(p),
                        },
                    }
                }
                ctx.idle(16);
            }
        });
    }
    let out = sim.run();
    pq.check_invariants();
    let mut fp = format!("clocks={:?}\n", out.clocks);
    fp.push_str(&fold(&m, &tracer, None));
    fp.push_str(&format!("report={:?}\n", analysis.report()));
    fp
}

#[test]
fn skiplist_blocking_is_shard_invariant() {
    assert_eq!(skiplist_fp(1, 1, Policy::Fixed), skiplist_fp(2, 1, Policy::Fixed));
}

#[test]
fn skiplist_pipelined_is_shard_invariant() {
    assert_eq!(skiplist_fp(1, 4, Policy::Fixed), skiplist_fp(2, 4, Policy::Fixed));
}

#[test]
fn btree_blocking_is_shard_invariant() {
    assert_eq!(btree_fp(1, 1, Policy::Fixed), btree_fp(2, 1, Policy::Fixed));
}

#[test]
fn btree_pipelined_is_shard_invariant() {
    assert_eq!(btree_fp(1, 4, Policy::Fixed), btree_fp(2, 4, Policy::Fixed));
}

#[test]
fn pqueue_blocking_is_shard_invariant() {
    assert_eq!(pqueue_fp(1, 1, Policy::Fixed), pqueue_fp(2, 1, Policy::Fixed));
}

#[test]
fn pqueue_pipelined_is_shard_invariant() {
    assert_eq!(pqueue_fp(1, 4, Policy::Fixed), pqueue_fp(2, 4, Policy::Fixed));
}

// ---- adaptive-policy battery ----
//
// Every self-tuning decision (coalesced runs, combiner back-off, lane-depth
// probes, stall back-off) is required to be a pure function of simulated
// state, so the whole-stack fingerprint — RunResult, stats snapshot, trace
// export, analysis report — must stay byte-identical across engine shard
// counts with `Policy::Adaptive` live. Shard counts above the partition
// count clamp, so the `4` here also covers the oversubscribed path.

#[test]
fn skiplist_pipelined_adaptive_is_shard_invariant() {
    assert_eq!(skiplist_fp(1, 4, Policy::Adaptive), skiplist_fp(4, 4, Policy::Adaptive));
}

#[test]
fn btree_pipelined_adaptive_is_shard_invariant() {
    assert_eq!(btree_fp(1, 4, Policy::Adaptive), btree_fp(4, 4, Policy::Adaptive));
}

#[test]
fn pqueue_pipelined_adaptive_is_shard_invariant() {
    assert_eq!(pqueue_fp(1, 4, Policy::Adaptive), pqueue_fp(4, 4, Policy::Adaptive));
}

#[test]
fn skiplist_blocking_adaptive_is_shard_invariant() {
    assert_eq!(skiplist_fp(1, 1, Policy::Adaptive), skiplist_fp(4, 1, Policy::Adaptive));
}
