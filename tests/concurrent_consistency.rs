//! Integration: concurrent-execution consistency across the host/NMP split.
//!
//! Every structure is exercised under full contention (threads racing on
//! the *same* hot keys) with the engine-integrated checkers attached:
//!
//! * the recorded operation history must be **linearizable** against a
//!   sequential map oracle (`nmp_sim::analysis::HistoryRecorder`),
//! * the run must be **race-free** and **region-policy clean**
//!   (`nmp_sim::analysis::Report::assert_clean`),
//! * and a balance invariant ties results to final contents: for each key,
//!
//! ```text
//! initially_present + successful_inserts - successful_removes
//!     == present_at_quiescence
//! ```
//!
//! because every successful insert transitions absent→present and every
//! successful remove transitions present→absent, and the structures report
//! success exactly for those transitions.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use hybrids_repro::prelude::*;
use nmp_sim::analysis::{HistEvent, HistOp, HistoryRecorder};
use parking_lot::Mutex;
use workloads::Rng;

const THREADS: usize = 4;

struct Tally {
    inserts_ok: i64,
    removes_ok: i64,
}

fn contended_ops(seed: u64, ks: &KeySpace, hot_keys: u32, len: usize) -> Vec<Op> {
    let mut rng = Rng::new(seed);
    (0..len)
        .map(|_| {
            // All threads fight over the same small hot set.
            let k = ks.initial_key(rng.below(hot_keys as u64) as u32);
            match rng.below(3) {
                0 => Op::Insert(k, rng.next_u32() | 1),
                1 => Op::Remove(k),
                _ => Op::Read(k),
            }
        })
        .collect()
}

fn hist_event(thread: usize, op: Op, r: OpResult, inv: u64, resp: u64) -> HistEvent {
    let (hop, key, value) = match op {
        Op::Read(k) => (HistOp::Read, k, r.value),
        Op::Insert(k, v) => (HistOp::Insert, k, v),
        Op::Remove(k) => (HistOp::Remove, k, 0),
        Op::Update(k, v) => (HistOp::Update, k, v),
        Op::Scan(..) | Op::ExtractMin => {
            unreachable!("contended_ops generates neither scans nor extract-mins")
        }
    };
    HistEvent { thread, op: hop, key, ok: r.ok, value, inv, resp }
}

/// Run the contended workload with all checkers attached: linearizability
/// of the recorded history, race/policy cleanliness, and the per-key
/// balance invariant against the final contents.
fn run_checked<S: SimIndex>(
    machine: &Arc<Machine>,
    index: &Arc<S>,
    ks: KeySpace,
    initial: &[(Key, Value)],
    final_contents: impl FnOnce() -> BTreeMap<Key, Value>,
) {
    let analysis = machine.attach_analysis();
    let recorder = Arc::new(HistoryRecorder::new());
    let tallies: Arc<Mutex<HashMap<Key, Tally>>> = Arc::new(Mutex::new(HashMap::new()));
    let mut sim = machine.simulation();
    index.spawn_services(&mut sim);
    for core in 0..THREADS {
        let index = Arc::clone(index);
        let tallies = Arc::clone(&tallies);
        let recorder = Arc::clone(&recorder);
        let ops = contended_ops(1000 + core as u64, &ks, 16, 150);
        sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| {
            for &op in &ops {
                let inv = ctx.now();
                let r = index.execute(ctx, op);
                recorder.record(hist_event(core, op, r, inv, ctx.now()));
                if r.ok {
                    let mut t = tallies.lock();
                    let e = t.entry(op.key()).or_insert(Tally { inserts_ok: 0, removes_ok: 0 });
                    match op {
                        Op::Insert(..) => e.inserts_ok += 1,
                        Op::Remove(_) => e.removes_ok += 1,
                        _ => {}
                    }
                }
            }
        });
    }
    sim.run();

    // Checker 1: no data races, no region-policy violations.
    analysis.report().assert_clean();

    // Checker 2: the history must linearize against the initial contents.
    let initial_map: HashMap<Key, Value> = initial.iter().copied().collect();
    assert_eq!(recorder.len(), THREADS * 150);
    recorder.check_linearizable(|k| initial_map.get(&k).copied()).unwrap_or_else(|e| panic!("{e}"));

    // Checker 3: per-key presence balance against the final contents.
    let present: HashSet<Key> = initial.iter().map(|&(k, _)| k).collect();
    let contents = final_contents();
    for (key, t) in tallies.lock().iter() {
        let initial = present.contains(key) as i64;
        let expected_present = initial + t.inserts_ok - t.removes_ok;
        assert!(
            expected_present == 0 || expected_present == 1,
            "key {key}: impossible balance {expected_present} (i={}, io={}, ro={})",
            initial,
            t.inserts_ok,
            t.removes_ok
        );
        assert_eq!(
            contents.contains_key(key) as i64,
            expected_present,
            "key {key}: presence does not balance (initial={initial}, +{} -{})",
            t.inserts_ok,
            t.removes_ok
        );
    }
}

fn keyspace() -> KeySpace {
    KeySpace::new(256, 2, 128)
}

/// Half the initial keys are populated so inserts and removes both succeed.
fn half_initial(ks: &KeySpace) -> Vec<(Key, Value)> {
    (0..ks.total_initial()).filter(|i| i % 2 == 0).map(|i| (ks.initial_key(i), 5)).collect()
}

#[test]
fn hybrid_skiplist_consistent_under_contention() {
    let ks = keyspace();
    let m = Machine::new(Config::tiny());
    let sl = HybridSkipList::new(Arc::clone(&m), ks, 10, 4, 3, 1);
    let initial = half_initial(&ks);
    sl.populate(initial.clone());
    let sl2 = Arc::clone(&sl);
    run_checked(&m, &sl, ks, &initial, move || {
        sl2.check_invariants();
        sl2.collect().into_iter().collect()
    });
}

#[test]
fn nmp_skiplist_consistent_under_contention() {
    let ks = keyspace();
    let m = Machine::new(Config::tiny());
    let sl = NmpSkipList::new(Arc::clone(&m), ks, 8, 3, 1);
    let initial = half_initial(&ks);
    sl.populate(initial.clone());
    let sl2 = Arc::clone(&sl);
    run_checked(&m, &sl, ks, &initial, move || {
        sl2.check_invariants();
        sl2.collect().into_iter().collect()
    });
}

#[test]
fn host_btree_consistent_under_contention() {
    let ks = keyspace();
    let m = Machine::new(Config::tiny());
    let initial = half_initial(&ks);
    let t = HostBTree::new(Arc::clone(&m), &initial, 0.7);
    let t2 = Arc::clone(&t);
    run_checked(&m, &t, ks, &initial, move || {
        t2.check_invariants();
        t2.collect().into_iter().collect()
    });
}

#[test]
fn hybrid_btree_consistent_under_contention() {
    let ks = keyspace();
    let m = Machine::new(Config::tiny());
    let initial = half_initial(&ks);
    let t = HybridBTree::with_budget(Arc::clone(&m), &initial, 0.7, 1, 2 * 1024);
    let t2 = Arc::clone(&t);
    run_checked(&m, &t, ks, &initial, move || {
        t2.check_invariants();
        t2.collect().into_iter().collect()
    });
}

#[test]
fn nonblocking_pipeline_consistent_too() {
    // Same checks with 4-deep non-blocking pipelines per thread.
    let ks = keyspace();
    let m = Machine::new(Config::tiny());
    let sl = HybridSkipList::new(Arc::clone(&m), ks, 10, 4, 3, 4);
    let initial = half_initial(&ks);
    sl.populate(initial.clone());
    let analysis = m.attach_analysis();
    let recorder = Arc::new(HistoryRecorder::new());
    let present: HashSet<Key> = initial.iter().map(|&(k, _)| k).collect();
    let tallies: Arc<Mutex<HashMap<Key, (i64, i64)>>> = Arc::new(Mutex::new(HashMap::new()));
    let mut sim = m.simulation();
    sl.spawn_services(&mut sim);
    for core in 0..THREADS {
        let sl = Arc::clone(&sl);
        let tallies = Arc::clone(&tallies);
        let recorder = Arc::clone(&recorder);
        let ops = contended_ops(2000 + core as u64, &ks, 16, 120);
        sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| {
            let mut lanes: Vec<Option<(Op, u64, _)>> = (0..4).map(|_| None).collect();
            let mut next = 0;
            let mut done = 0;
            while done < ops.len() {
                for (lane, lane_slot) in lanes.iter_mut().enumerate() {
                    let complete = |op: Op, r: OpResult, inv: u64, resp: u64| {
                        recorder.record(hist_event(core, op, r, inv, resp));
                        if r.ok {
                            let mut t = tallies.lock();
                            let e = t.entry(op.key()).or_insert((0, 0));
                            match op {
                                Op::Insert(..) => e.0 += 1,
                                Op::Remove(_) => e.1 += 1,
                                _ => {}
                            }
                        }
                    };
                    match lane_slot.take() {
                        None if next < ops.len() => {
                            let op = ops[next];
                            next += 1;
                            let inv = ctx.now();
                            match sl.issue(ctx, lane, op) {
                                Issued::Done(r) => {
                                    complete(op, r, inv, ctx.now());
                                    done += 1;
                                }
                                Issued::Pending(p) => *lane_slot = Some((op, inv, p)),
                            }
                        }
                        None => {}
                        Some((op, inv, mut p)) => match sl.poll(ctx, &mut p) {
                            PollOutcome::Done(r) => {
                                complete(op, r, inv, ctx.now());
                                done += 1;
                            }
                            PollOutcome::Pending => *lane_slot = Some((op, inv, p)),
                        },
                    }
                }
                ctx.idle(16);
            }
        });
    }
    sim.run();
    analysis.report().assert_clean();
    let initial_map: HashMap<Key, Value> = initial.iter().copied().collect();
    recorder.check_linearizable(|k| initial_map.get(&k).copied()).unwrap_or_else(|e| panic!("{e}"));
    sl.check_invariants();
    let contents: BTreeMap<Key, Value> = sl.collect().into_iter().collect();
    for (key, (io, ro)) in tallies.lock().iter() {
        let initial = present.contains(key) as i64;
        assert_eq!(
            contents.contains_key(key) as i64,
            initial + io - ro,
            "key {key} unbalanced (initial {initial}, +{io}, -{ro})"
        );
    }
}
