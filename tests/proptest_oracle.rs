//! Property tests: random operation sequences against a `BTreeMap` oracle,
//! for each index structure (single simulated host thread, so the oracle
//! order is exact).

use std::collections::BTreeMap;
use std::sync::Arc;

use hybrids_repro::prelude::*;
use parking_lot::Mutex;
use proptest::prelude::*;

const N: u32 = 128;
const PARTS: u32 = 2;

fn keyspace() -> KeySpace {
    KeySpace::new(N, PARTS, 64)
}

#[derive(Debug, Clone, Copy)]
enum PropOp {
    Read(u32),
    InsertGap(u32, u8),
    Remove(u32),
    Update(u32, u32),
    Scan(u32, u16),
}

fn prop_ops() -> impl Strategy<Value = Vec<PropOp>> {
    let op = prop_oneof![
        3 => (0..N).prop_map(PropOp::Read),
        3 => ((0..N), (1..8u8)).prop_map(|(i, off)| PropOp::InsertGap(i, off)),
        3 => (0..N).prop_map(PropOp::Remove),
        3 => ((0..N), any::<u32>()).prop_map(|(i, v)| PropOp::Update(i, v | 1)),
        1 => ((0..N), (1..40u16)).prop_map(|(i, len)| PropOp::Scan(i, len)),
    ];
    proptest::collection::vec(op, 1..80)
}

fn to_ops(ks: &KeySpace, seq: &[PropOp]) -> Vec<Op> {
    seq.iter()
        .map(|&p| match p {
            PropOp::Read(i) => Op::Read(ks.initial_key(i)),
            PropOp::InsertGap(i, off) => Op::Insert(ks.initial_key(i) + off as u32, 1),
            PropOp::Remove(i) => Op::Remove(ks.initial_key(i)),
            PropOp::Update(i, v) => Op::Update(ks.initial_key(i), v),
            PropOp::Scan(i, len) => Op::Scan(ks.initial_key(i), len),
        })
        .collect()
}

fn oracle(ops: &[Op], initial: &[(Key, Value)]) -> (Vec<(bool, Value)>, BTreeMap<Key, Value>) {
    let mut model: BTreeMap<Key, Value> = initial.iter().copied().collect();
    let results = ops
        .iter()
        .map(|&op| match op {
            Op::Read(k) => model.get(&k).map_or((false, 0), |&v| (true, v)),
            Op::Insert(k, v) => {
                if model.contains_key(&k) {
                    (false, 0)
                } else {
                    model.insert(k, v);
                    (true, 0)
                }
            }
            Op::Remove(k) => (model.remove(&k).is_some(), 0),
            Op::Update(k, v) => match model.get_mut(&k) {
                Some(slot) => {
                    *slot = v;
                    (true, 0)
                }
                None => (false, 0),
            },
            Op::Scan(k, len) => {
                let n = model.range(k..).take(len as usize).count() as u32;
                (n > 0, n)
            }
        })
        .collect();
    (results, model)
}

fn drive<S: SimIndex>(machine: &Arc<Machine>, index: &Arc<S>, ops: Vec<Op>) -> Vec<(bool, Value)> {
    let results = Arc::new(Mutex::new(Vec::new()));
    let mut sim = machine.simulation();
    index.spawn_services(&mut sim);
    let index = Arc::clone(index);
    let results2 = Arc::clone(&results);
    sim.spawn("h0", ThreadKind::Host { core: 0 }, move |ctx| {
        for &op in &ops {
            let r = index.execute(ctx, op);
            let v = match op {
                Op::Read(_) | Op::Scan(..) => r.value,
                _ => 0,
            };
            results2.lock().push((r.ok, v));
        }
    });
    sim.run();
    let out = results.lock().clone();
    out
}

fn initial(ks: &KeySpace) -> Vec<(Key, Value)> {
    (0..ks.total_initial()).filter(|i| i % 3 != 2).map(|i| (ks.initial_key(i), i + 1)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn hybrid_skiplist_matches_oracle(seq in prop_ops()) {
        let ks = keyspace();
        let init = initial(&ks);
        let ops = to_ops(&ks, &seq);
        let (expect, model) = oracle(&ops, &init);
        let m = Machine::new(Config::tiny());
        let sl = HybridSkipList::new(Arc::clone(&m), ks, 9, 4, 5, 1);
        sl.populate(init.clone());
        let got = drive(&m, &sl, ops);
        prop_assert_eq!(got, expect);
        sl.check_invariants();
        prop_assert_eq!(sl.collect().into_iter().collect::<BTreeMap<_, _>>(), model);
    }

    #[test]
    fn hybrid_btree_matches_oracle(seq in prop_ops()) {
        let ks = keyspace();
        let init = initial(&ks);
        let ops = to_ops(&ks, &seq);
        let (expect, model) = oracle(&ops, &init);
        let m = Machine::new(Config::tiny());
        let t = HybridBTree::with_budget(Arc::clone(&m), &init, 1.0, 1, 1024);
        let got = drive(&m, &t, ops);
        prop_assert_eq!(got, expect);
        t.check_invariants();
        prop_assert_eq!(t.collect().into_iter().collect::<BTreeMap<_, _>>(), model);
    }

    #[test]
    fn host_btree_matches_oracle(seq in prop_ops()) {
        let ks = keyspace();
        let init = initial(&ks);
        let ops = to_ops(&ks, &seq);
        let (expect, model) = oracle(&ops, &init);
        let m = Machine::new(Config::tiny());
        let t = HostBTree::new(Arc::clone(&m), &init, 1.0);
        let got = drive(&m, &t, ops);
        prop_assert_eq!(got, expect);
        t.check_invariants();
        prop_assert_eq!(t.collect().into_iter().collect::<BTreeMap<_, _>>(), model);
    }

    #[test]
    fn nmp_skiplist_matches_oracle(seq in prop_ops()) {
        let ks = keyspace();
        let init = initial(&ks);
        let ops = to_ops(&ks, &seq);
        let (expect, model) = oracle(&ops, &init);
        let m = Machine::new(Config::tiny());
        let sl = NmpSkipList::new(Arc::clone(&m), ks, 7, 5, 1);
        sl.populate(init.clone());
        let got = drive(&m, &sl, ops);
        prop_assert_eq!(got, expect);
        sl.check_invariants();
        prop_assert_eq!(sl.collect().into_iter().collect::<BTreeMap<_, _>>(), model);
    }
}
