//! Randomized oracle tests: seeded random operation sequences against a
//! `BTreeMap` oracle, for each index structure (single simulated host
//! thread, so the oracle order is exact). Deterministic xorshift sequences
//! stand in for proptest, which is unavailable offline. The hybrid hash
//! map is additionally checked against `std::collections::HashMap` and the
//! hybrid priority queue against `std::collections::BinaryHeap`.

use std::collections::BTreeMap;
use std::sync::Arc;

use hybrids_repro::prelude::*;
use parking_lot::Mutex;

const N: u32 = 128;
const PARTS: u32 = 2;
const CASES: u64 = 12;

fn keyspace() -> KeySpace {
    KeySpace::new(N, PARTS, 64)
}

#[derive(Debug, Clone, Copy)]
enum PropOp {
    Read(u32),
    InsertGap(u32, u8),
    Remove(u32),
    Update(u32, u32),
    Scan(u32, u16),
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Random op sequence matching the old proptest strategy: reads, gap
/// inserts, removes, and updates at weight 3 each, scans at weight 1,
/// sequence length 1..80.
fn prop_ops(rng: &mut u64) -> Vec<PropOp> {
    let len = 1 + (xorshift(rng) % 79) as usize;
    (0..len)
        .map(|_| {
            let i = (xorshift(rng) % N as u64) as u32;
            match xorshift(rng) % 13 {
                0..=2 => PropOp::Read(i),
                3..=5 => PropOp::InsertGap(i, 1 + (xorshift(rng) % 7) as u8),
                6..=8 => PropOp::Remove(i),
                9..=11 => PropOp::Update(i, (xorshift(rng) as u32) | 1),
                _ => PropOp::Scan(i, 1 + (xorshift(rng) % 39) as u16),
            }
        })
        .collect()
}

fn to_ops(ks: &KeySpace, seq: &[PropOp]) -> Vec<Op> {
    seq.iter()
        .map(|&p| match p {
            PropOp::Read(i) => Op::Read(ks.initial_key(i)),
            PropOp::InsertGap(i, off) => Op::Insert(ks.initial_key(i) + off as u32, 1),
            PropOp::Remove(i) => Op::Remove(ks.initial_key(i)),
            PropOp::Update(i, v) => Op::Update(ks.initial_key(i), v),
            PropOp::Scan(i, len) => Op::Scan(ks.initial_key(i), len),
        })
        .collect()
}

fn oracle(ops: &[Op], initial: &[(Key, Value)]) -> (Vec<(bool, Value)>, BTreeMap<Key, Value>) {
    let mut model: BTreeMap<Key, Value> = initial.iter().copied().collect();
    let results = ops
        .iter()
        .map(|&op| match op {
            Op::Read(k) => model.get(&k).map_or((false, 0), |&v| (true, v)),
            Op::Insert(k, v) => {
                if let std::collections::btree_map::Entry::Vacant(e) = model.entry(k) {
                    e.insert(v);
                    (true, 0)
                } else {
                    (false, 0)
                }
            }
            Op::Remove(k) => (model.remove(&k).is_some(), 0),
            Op::Update(k, v) => match model.get_mut(&k) {
                Some(slot) => {
                    *slot = v;
                    (true, 0)
                }
                None => (false, 0),
            },
            Op::Scan(k, len) => {
                let n = model.range(k..).take(len as usize).count() as u32;
                (n > 0, n)
            }
            // prop_ops never generates extract-min; the pqueue has its own
            // BinaryHeap oracle below.
            Op::ExtractMin => unreachable!(),
        })
        .collect();
    (results, model)
}

fn drive<S: SimIndex>(machine: &Arc<Machine>, index: &Arc<S>, ops: Vec<Op>) -> Vec<(bool, Value)> {
    let results = Arc::new(Mutex::new(Vec::new()));
    let mut sim = machine.simulation();
    index.spawn_services(&mut sim);
    let index = Arc::clone(index);
    let results2 = Arc::clone(&results);
    sim.spawn("h0", ThreadKind::Host { core: 0 }, move |ctx| {
        for &op in &ops {
            let r = index.execute(ctx, op);
            let v = match op {
                Op::Read(_) | Op::Scan(..) | Op::ExtractMin => r.value,
                _ => 0,
            };
            results2.lock().push((r.ok, v));
        }
    });
    sim.run();
    let out = results.lock().clone();
    out
}

fn initial(ks: &KeySpace) -> Vec<(Key, Value)> {
    (0..ks.total_initial()).filter(|i| i % 3 != 2).map(|i| (ks.initial_key(i), i + 1)).collect()
}

/// Run `CASES` seeded random sequences against `make` + the oracle.
fn check_matches_oracle<S>(make: impl Fn(&Arc<Machine>, KeySpace, &[(Key, Value)]) -> Arc<S>)
where
    S: SimIndex + CheckedIndex,
{
    for case in 0..CASES {
        let mut rng = 0x243F6A8885A308D3 ^ (case + 1).wrapping_mul(0x9E3779B97F4A7C15);
        let seq = prop_ops(&mut rng);
        let ks = keyspace();
        let init = initial(&ks);
        let ops = to_ops(&ks, &seq);
        let (expect, model) = oracle(&ops, &init);
        let m = Machine::new(Config::tiny());
        let idx = make(&m, ks, &init);
        let got = drive(&m, &idx, ops);
        assert_eq!(got, expect, "case {case}: results diverge from oracle");
        idx.check_invariants();
        assert_eq!(
            idx.collect().into_iter().collect::<BTreeMap<_, _>>(),
            model,
            "case {case}: final contents diverge from oracle"
        );
    }
}

/// The post-run checks every structure under test supports.
trait CheckedIndex {
    fn check_invariants(&self);
    fn collect(&self) -> Vec<(Key, Value)>;
}

macro_rules! impl_checked {
    ($($t:ty),*) => {$(
        impl CheckedIndex for $t {
            fn check_invariants(&self) {
                <$t>::check_invariants(self)
            }
            fn collect(&self) -> Vec<(Key, Value)> {
                <$t>::collect(self)
            }
        }
    )*};
}

impl_checked!(HybridSkipList, NmpSkipList, HostBTree, HybridBTree);

#[test]
fn hybrid_skiplist_matches_oracle() {
    check_matches_oracle(|m, ks, init| {
        let sl = HybridSkipList::new(Arc::clone(m), ks, 9, 4, 5, 1);
        sl.populate(init.to_vec());
        sl
    });
}

#[test]
fn hybrid_btree_matches_oracle() {
    check_matches_oracle(|m, _ks, init| {
        HybridBTree::with_budget(Arc::clone(m), init, 1.0, 1, 1024)
    });
}

#[test]
fn host_btree_matches_oracle() {
    check_matches_oracle(|m, _ks, init| HostBTree::new(Arc::clone(m), init, 1.0));
}

#[test]
fn nmp_skiplist_matches_oracle() {
    check_matches_oracle(|m, ks, init| {
        let sl = NmpSkipList::new(Arc::clone(m), ks, 7, 5, 1);
        sl.populate(init.to_vec());
        sl
    });
}

/// The hybrid hash map against `std::collections::HashMap`. Scans are
/// remapped to reads (a hash map has no key order), so the whole sequence
/// is point ops and the std oracle is exact.
#[test]
fn hybrid_hashmap_matches_std_hashmap() {
    use std::collections::HashMap;
    for case in 0..CASES {
        let mut rng = 0x243F6A8885A308D3 ^ (case + 101).wrapping_mul(0x9E3779B97F4A7C15);
        let seq = prop_ops(&mut rng);
        let ks = keyspace();
        let init = initial(&ks);
        let ops: Vec<Op> = to_ops(&ks, &seq)
            .into_iter()
            .map(|op| match op {
                Op::Scan(k, _) => Op::Read(k),
                op => op,
            })
            .collect();
        let mut model: HashMap<Key, Value> = init.iter().copied().collect();
        let expect: Vec<(bool, Value)> = ops
            .iter()
            .map(|&op| match op {
                Op::Read(k) => model.get(&k).map_or((false, 0), |&v| (true, v)),
                Op::Insert(k, v) => {
                    if let std::collections::hash_map::Entry::Vacant(e) = model.entry(k) {
                        e.insert(v);
                        (true, 0)
                    } else {
                        (false, 0)
                    }
                }
                Op::Remove(k) => (model.remove(&k).is_some(), 0),
                Op::Update(k, v) => match model.get_mut(&k) {
                    Some(slot) => {
                        *slot = v;
                        (true, 0)
                    }
                    None => (false, 0),
                },
                Op::Scan(..) | Op::ExtractMin => unreachable!(),
            })
            .collect();
        let m = Machine::new(Config::tiny());
        let hm = HybridHashMap::new(Arc::clone(&m), 32, case ^ 0xABCD, 1);
        hm.populate(init.clone());
        let got = drive(&m, &hm, ops);
        assert_eq!(got, expect, "case {case}: results diverge from HashMap oracle");
        hm.check_invariants();
        let mut want: Vec<(Key, Value)> = model.into_iter().collect();
        want.sort_unstable();
        assert_eq!(hm.collect(), want, "case {case}: final contents diverge");
    }
}

/// Coalescing strategy: operation sequences engineered to fill combining
/// passes with duplicate and adjacent keys — every key is drawn from a
/// 4-key hot set plus an adjacency offset, three quarters of the ops are
/// reads. Under `Policy::Adaptive` a pipelined client turns the duplicate
/// reads into coalesced runs.
fn coalescing_ops(rng: &mut u64, ks: &KeySpace) -> Vec<Op> {
    let len = 16 + (xorshift(rng) % 64) as usize;
    (0..len)
        .map(|_| {
            let hot = ks.initial_key((xorshift(rng) % 4) as u32);
            let k = hot + (xorshift(rng) % 2) as u32;
            match xorshift(rng) % 8 {
                0 => Op::Insert(k, (xorshift(rng) as u32) | 1),
                1 => Op::Remove(k),
                2 => Op::Update(k, (xorshift(rng) as u32) | 1),
                _ => Op::Read(k),
            }
        })
        .collect()
}

/// Drive `ops` on one host thread, pipelining *runs of consecutive reads*
/// up to 4 lanes deep (reads commute, so the sequential oracle stays
/// exact) and draining fully before every mutation. Results come back in
/// issue order regardless of lane completion order, so a response landing
/// on the wrong request — the failure mode of broken coalescing — shows up
/// as an oracle mismatch on that position.
fn drive_read_pipelined<S: SimIndex>(
    machine: &Arc<Machine>,
    index: &Arc<S>,
    ops: Vec<Op>,
) -> Vec<(bool, Value)> {
    const LANES: usize = 4;
    let results = Arc::new(Mutex::new(vec![(false, 0u32); ops.len()]));
    let mut sim = machine.simulation();
    index.spawn_services(&mut sim);
    let index = Arc::clone(index);
    let results2 = Arc::clone(&results);
    sim.spawn("h0", ThreadKind::Host { core: 0 }, move |ctx| {
        let mut i = 0;
        while i < ops.len() {
            if !matches!(ops[i], Op::Read(_)) {
                let r = index.execute(ctx, ops[i]);
                results2.lock()[i] = (r.ok, 0);
                i += 1;
                continue;
            }
            // Issue the whole read run, LANES at a time, drain each wave.
            let mut run = 0;
            while i + run < ops.len() && matches!(ops[i + run], Op::Read(_)) {
                run += 1;
            }
            for wave in (0..run).step_by(LANES) {
                let wave_len = LANES.min(run - wave);
                let mut pending: Vec<(usize, Option<S::Pending>)> = Vec::new();
                for lane in 0..wave_len {
                    let idx = i + wave + lane;
                    match index.issue(ctx, lane, ops[idx]) {
                        Issued::Done(r) => results2.lock()[idx] = (r.ok, r.value),
                        Issued::Pending(p) => pending.push((idx, Some(p))),
                    }
                }
                while pending.iter().any(|(_, p)| p.is_some()) {
                    for (idx, slot) in pending.iter_mut() {
                        if let Some(mut p) = slot.take() {
                            match index.poll(ctx, &mut p) {
                                PollOutcome::Done(r) => results2.lock()[*idx] = (r.ok, r.value),
                                PollOutcome::Pending => *slot = Some(p),
                            }
                        }
                    }
                    ctx.idle(16);
                }
            }
            i += run;
        }
    });
    sim.run();
    let out = results.lock().clone();
    out
}

/// The hybrid hash map under `Policy::Adaptive` with the coalescing
/// strategy: duplicate hot-key reads four lanes deep must coalesce at
/// least once across the cases, and every per-request response — coalesced
/// replicas included — must match the sequential oracle in issue order,
/// with the final contents intact.
#[test]
fn hybrid_hashmap_adaptive_coalescing_matches_oracle() {
    let mut coalesced_anywhere = 0u64;
    for case in 0..CASES {
        let mut rng = 0x452821E638D01377 ^ (case + 1).wrapping_mul(0x9E3779B97F4A7C15);
        let ks = keyspace();
        let init = initial(&ks);
        let ops = coalescing_ops(&mut rng, &ks);
        let (expect, model) = oracle(&ops, &init);
        let m = Machine::new(Config::tiny().with_policy(nmp_sim::Policy::Adaptive));
        let hm = HybridHashMap::new(Arc::clone(&m), 32, case ^ 0x5EED, 4);
        hm.populate(init.clone());
        let got = drive_read_pipelined(&m, &hm, ops);
        assert_eq!(got, expect, "case {case}: results diverge from oracle");
        hm.check_invariants();
        let want: BTreeMap<Key, Value> = model.clone();
        assert_eq!(
            hm.collect().into_iter().collect::<BTreeMap<_, _>>(),
            want,
            "case {case}: final contents diverge from oracle"
        );
        coalesced_anywhere += m.mem().snapshot().offload.coalesced_total();
    }
    assert!(
        coalesced_anywhere > 0,
        "duplicate hot-key reads at 4 lanes never coalesced across {CASES} cases"
    );
}

/// The hybrid priority queue against `std::collections::BinaryHeap` (as a
/// min-heap via `Reverse`, with a side map enforcing key uniqueness). On a
/// single thread the minima cache is always exact, so every extract-min
/// must pop the global minimum — the heap oracle is exact.
#[test]
fn hybrid_pqueue_matches_binary_heap() {
    use std::cmp::Reverse;
    use std::collections::{BinaryHeap, HashMap};
    for case in 0..CASES {
        let mut rng = 0x13198A2E03707344 ^ (case + 1).wrapping_mul(0x9E3779B97F4A7C15);
        let ks = keyspace();
        let init = initial(&ks);
        let len = 1 + (xorshift(&mut rng) % 79) as usize;
        let ops: Vec<Op> = (0..len)
            .map(|_| {
                if xorshift(&mut rng).is_multiple_of(3) {
                    Op::ExtractMin
                } else {
                    let i = (xorshift(&mut rng) % N as u64) as u32;
                    let off = 1 + (xorshift(&mut rng) % 7) as u32;
                    Op::Insert(ks.initial_key(i) + off, (xorshift(&mut rng) as u32) | 1)
                }
            })
            .collect();
        let mut heap: BinaryHeap<Reverse<Key>> = init.iter().map(|&(k, _)| Reverse(k)).collect();
        let mut values: HashMap<Key, Value> = init.iter().copied().collect();
        let expect: Vec<(bool, Value)> = ops
            .iter()
            .map(|&op| match op {
                Op::Insert(k, v) => {
                    if let std::collections::hash_map::Entry::Vacant(e) = values.entry(k) {
                        e.insert(v);
                        heap.push(Reverse(k));
                        (true, 0)
                    } else {
                        (false, 0)
                    }
                }
                Op::ExtractMin => match heap.pop() {
                    Some(Reverse(k)) => {
                        values.remove(&k);
                        (true, k)
                    }
                    None => (false, 0),
                },
                _ => unreachable!(),
            })
            .collect();
        let m = Machine::new(Config::tiny());
        let pq = HybridPqueue::with_exec_log(Arc::clone(&m), ks, 7, 5, 1);
        pq.populate(&init);
        let got = drive(&m, &pq, ops);
        assert_eq!(got, expect, "case {case}: results diverge from BinaryHeap oracle");
        pq.check_invariants();
        pq.verify_extract_order(&init);
        let mut want: Vec<(Key, Value)> = values.into_iter().collect();
        want.sort_unstable();
        assert_eq!(pq.collect(), want, "case {case}: final contents diverge");
    }
}
