//! Integration: the `trace` subsystem end to end.
//!
//! * **Determinism** — attaching a tracer never perturbs simulated time,
//!   and the exported Chrome-trace JSON is byte-identical across runs of
//!   the same seed/config (skiplist and B+ tree, blocking and pipelined).
//! * **Span accounting** — per completed op, the host/post/wait phases
//!   tile the end-to-end latency exactly, and the wait decomposes into
//!   queue/exec/drain over observed publication-list legs; at quiescence
//!   every begun op completed and every posted leg was executed and
//!   observed.
//! * **Staleness counter** — extract-min probes that find an empty
//!   partition increment the `pq_stale` offload counter.

use std::sync::Arc;

use hybrids::driver::{run_index, RunResult, RunSpec};
use hybrids_repro::prelude::*;
use nmp_sim::trace::{TraceSink, Tracer};

fn spec(seed: u64, inflight: usize) -> RunSpec {
    RunSpec {
        workload: WorkloadSpec {
            seed,
            threads: 4,
            ops_per_thread: 60,
            mix: Mix::read_insert_remove(50, 30, 20),
            read_dist: KeyDist::Zipfian,
            insert_dist: InsertDist::UniformGap,
        },
        warmup_per_thread: 15,
        inflight,
        app_footprint_lines: 0,
    }
}

/// Run the hybrid skiplist with a tracer attached; return the run result,
/// the tracer, and the exported trace.
fn traced_skiplist(seed: u64, inflight: usize) -> (RunResult, Arc<Tracer>, String) {
    let ks = KeySpace::new(512, 2, 256);
    let m = Machine::new(Config::tiny());
    let tracer = m.attach_tracer();
    let sl = HybridSkipList::new(Arc::clone(&m), ks, 10, 4, seed, inflight.max(1));
    sl.populate((0..ks.total_initial()).map(|i| (ks.initial_key(i), i)));
    let r = run_index(&m, &sl, &ks, &spec(seed, inflight));
    let json = TraceSink::chrome_json(&tracer);
    (r, tracer, json)
}

fn traced_btree(seed: u64, inflight: usize) -> (RunResult, Arc<Tracer>, String) {
    let ks = KeySpace::new(512, 2, 512);
    let m = Machine::new(Config::tiny());
    let tracer = m.attach_tracer();
    let pairs: Vec<(Key, Value)> =
        (0..ks.total_initial()).map(|i| (ks.initial_key(i), i)).collect();
    let t = HybridBTree::new(Arc::clone(&m), &pairs, 0.5, inflight.max(1));
    let r = run_index(&m, &t, &ks, &spec(seed, inflight));
    let json = TraceSink::chrome_json(&tracer);
    (r, tracer, json)
}

fn assert_valid_chrome_trace(json: &str) {
    let v = serde_json::parse_value_str(json).expect("exported trace must parse as JSON");
    match v.field("traceEvents").expect("traceEvents field") {
        serde::Value::Array(items) => {
            assert!(!items.is_empty(), "trace must contain events")
        }
        _ => panic!("traceEvents is not an array"),
    }
}

#[test]
fn skiplist_blocking_trace_is_byte_identical() {
    let (ra, _, ja) = traced_skiplist(42, 1);
    let (rb, _, jb) = traced_skiplist(42, 1);
    assert_eq!(ra.cycles, rb.cycles);
    assert_eq!(ja, jb, "same seed/config must export byte-identical traces");
    assert_valid_chrome_trace(&ja);
}

#[test]
fn skiplist_pipelined_trace_is_byte_identical() {
    let (ra, _, ja) = traced_skiplist(43, 4);
    let (rb, _, jb) = traced_skiplist(43, 4);
    assert_eq!(ra.cycles, rb.cycles);
    assert_eq!(ja, jb);
    assert_valid_chrome_trace(&ja);
}

#[test]
fn btree_traces_are_byte_identical_blocking_and_pipelined() {
    for inflight in [1, 2] {
        let (ra, _, ja) = traced_btree(7, inflight);
        let (rb, _, jb) = traced_btree(7, inflight);
        assert_eq!(ra.cycles, rb.cycles, "inflight={inflight}");
        assert_eq!(ja, jb, "inflight={inflight}");
        assert_valid_chrome_trace(&ja);
    }
}

#[test]
fn attaching_a_tracer_does_not_change_simulated_time() {
    let untraced = || {
        let ks = KeySpace::new(512, 2, 256);
        let m = Machine::new(Config::tiny());
        let sl = HybridSkipList::new(Arc::clone(&m), ks, 10, 4, 42, 1);
        sl.populate((0..ks.total_initial()).map(|i| (ks.initial_key(i), i)));
        let r = run_index(&m, &sl, &ks, &spec(42, 1));
        (r.cycles, r.succeeded_ops, r.stats.dram_reads())
    };
    let (traced, _, _) = traced_skiplist(42, 1);
    assert_eq!(
        (traced.cycles, traced.succeeded_ops, traced.stats.dram_reads()),
        untraced(),
        "tracing must be invisible to the simulation"
    );
}

fn check_span_accounting(tracer: &Tracer) {
    let records = tracer.op_records();
    assert!(!records.is_empty(), "run must complete traced ops");
    for r in &records {
        assert!(r.end >= r.start, "op {} ends before it starts", r.op);
        assert_eq!(
            r.host + r.post + r.wait,
            r.end - r.start,
            "op {} phases must tile its end-to-end latency exactly",
            r.op
        );
        assert_eq!(
            r.queue + r.exec + r.drain,
            r.wait,
            "op {} wait must decompose into queue/exec/drain over its {} legs",
            r.op,
            r.legs
        );
        if r.legs == 0 {
            assert_eq!(r.wait, 0, "op {} waited without posting", r.op);
        }
    }
    let s = tracer.summary();
    assert_eq!(s.ops_begun, s.ops_completed, "every begun op completed at quiescence");
    assert_eq!(s.legs_posted, s.legs_executed, "every posted leg executed");
    assert_eq!(s.legs_posted, s.legs_observed, "every executed leg was observed");
    assert!(s.legs_posted >= s.ops_completed.min(1), "offloaded runs post legs");
}

#[test]
fn skiplist_span_accounting_blocking_and_pipelined() {
    for inflight in [1, 4] {
        let (_, tracer, _) = traced_skiplist(99, inflight);
        check_span_accounting(&tracer);
    }
}

#[test]
fn btree_span_accounting_blocking_and_pipelined() {
    for inflight in [1, 2] {
        let (_, tracer, _) = traced_btree(99, inflight);
        check_span_accounting(&tracer);
    }
}

#[test]
fn latency_percentiles_surface_in_run_result() {
    let (r, _, _) = traced_skiplist(42, 1);
    assert!(r.lat_p50_cycles > 0.0);
    assert!(r.lat_p50_cycles <= r.lat_p95_cycles);
    assert!(r.lat_p95_cycles <= r.lat_p99_cycles);
    assert!(!r.op_latency.is_empty(), "per-kind breakdown must be populated");
    let total: u64 = r.op_latency.iter().map(|k| k.count).sum();
    assert_eq!(total, r.measured_ops, "every measured op lands in exactly one kind");
    for k in &r.op_latency {
        assert!(k.p50_cycles <= k.p99_cycles, "{} percentiles out of order", k.kind);
        assert!(k.mean_cycles > 0.0);
    }
}

#[test]
fn extract_min_on_empty_partitions_counts_stale_probes() {
    let ks = KeySpace::new(64, 2, 64);
    let m = Machine::new(Config::tiny());
    let tracer = m.attach_tracer();
    let pq = HybridPqueue::new(Arc::clone(&m), ks, 6, 42, 1);
    // No populate: every partition is empty, so the cache-guided probe of
    // each partition is stale by construction.
    let mut sim = m.simulation();
    pq.spawn_services(&mut sim);
    let pq2 = Arc::clone(&pq);
    sim.spawn("host-0", ThreadKind::Host { core: 0 }, move |ctx| {
        let r = pq2.execute(ctx, Op::ExtractMin);
        assert!(!r.ok, "extract from an empty queue must fail");
    });
    sim.run();
    let stale = m.mem().snapshot().offload.pq_stale_total();
    assert_eq!(stale, 2, "one stale probe per empty partition");
    // The tracer's counter track mirrors the running total.
    let counters: Vec<u64> = tracer
        .events()
        .iter()
        .filter_map(|e| match e {
            nmp_sim::trace::TraceEvent::Counter { name: "pq_stale_probes", value, .. } => {
                Some(*value)
            }
            _ => None,
        })
        .collect();
    assert_eq!(counters, vec![1, 2], "counter track records each increment");
}
