//! Integration: range scans (YCSB-E extension) across all structures.
//!
//! Scans are not part of the paper's evaluation; they exercise the leaf /
//! bottom-level chains, partition-hopping continuation, and the hybrid
//! B+ tree's subtree-bound protocol.

use std::sync::Arc;

use hybrids_repro::prelude::*;
use parking_lot::Mutex;

const N: u32 = 512;
const PARTS: u32 = 2;

fn keyspace() -> KeySpace {
    KeySpace::new(N, PARTS, 128)
}

fn scan_counts<S: SimIndex>(
    machine: &Arc<Machine>,
    index: &Arc<S>,
    probes: Vec<(Key, u16)>,
) -> Vec<u32> {
    let out = Arc::new(Mutex::new(Vec::new()));
    let mut sim = machine.simulation();
    index.spawn_services(&mut sim);
    let index = Arc::clone(index);
    let out2 = Arc::clone(&out);
    sim.spawn("h0", ThreadKind::Host { core: 0 }, move |ctx| {
        for &(k, len) in &probes {
            let r = index.execute(ctx, Op::Scan(k, len));
            out2.lock().push(r.value);
        }
    });
    sim.run();
    let v = out.lock().clone();
    v
}

/// Expected count for a scan over the initial key grid.
fn expect(ks: &KeySpace, key: Key, len: u16) -> u32 {
    let mut count = 0;
    for i in 0..ks.total_initial() {
        if ks.initial_key(i) >= key {
            count += 1;
            if count == len as u32 {
                break;
            }
        }
    }
    count
}

fn probes(ks: &KeySpace) -> Vec<(Key, u16)> {
    vec![
        (ks.initial_key(0), 10),             // start of key space
        (ks.initial_key(100) + 1, 25),       // mid, from a gap key
        (ks.initial_key(N - 5), 100),        // runs off the end
        (ks.initial_key(N / PARTS - 3), 20), // crosses the partition boundary
        (ks.keyspace() - 1, 10),             // past every key
        (ks.initial_key(0), 400),            // long scan over most of the space
    ]
}

#[test]
fn hybrid_skiplist_scans_match_expectation() {
    let ks = keyspace();
    let m = Machine::new(Config::tiny());
    let sl = HybridSkipList::new(Arc::clone(&m), ks, 10, 4, 3, 1);
    sl.populate((0..ks.total_initial()).map(|i| (ks.initial_key(i), i)));
    let ps = probes(&ks);
    let got = scan_counts(&m, &sl, ps.clone());
    for ((k, len), g) in ps.into_iter().zip(got) {
        assert_eq!(g, expect(&ks, k, len), "scan({k}, {len})");
    }
}

#[test]
fn nmp_skiplist_scans_match_expectation() {
    let ks = keyspace();
    let m = Machine::new(Config::tiny());
    let sl = NmpSkipList::new(Arc::clone(&m), ks, 8, 3, 1);
    sl.populate((0..ks.total_initial()).map(|i| (ks.initial_key(i), i)));
    let ps = probes(&ks);
    let got = scan_counts(&m, &sl, ps.clone());
    for ((k, len), g) in ps.into_iter().zip(got) {
        assert_eq!(g, expect(&ks, k, len), "scan({k}, {len})");
    }
}

#[test]
fn host_btree_scans_match_expectation() {
    let ks = keyspace();
    let m = Machine::new(Config::tiny());
    let pairs: Vec<(Key, Value)> =
        (0..ks.total_initial()).map(|i| (ks.initial_key(i), i)).collect();
    let t = HostBTree::new(Arc::clone(&m), &pairs, 0.6);
    let ps = probes(&ks);
    let got = scan_counts(&m, &t, ps.clone());
    for ((k, len), g) in ps.into_iter().zip(got) {
        assert_eq!(g, expect(&ks, k, len), "scan({k}, {len})");
    }
}

#[test]
fn hybrid_btree_scans_match_expectation() {
    let ks = keyspace();
    let m = Machine::new(Config::tiny());
    let pairs: Vec<(Key, Value)> =
        (0..ks.total_initial()).map(|i| (ks.initial_key(i), i)).collect();
    let t = HybridBTree::with_budget(Arc::clone(&m), &pairs, 0.6, 1, 2 * 1024);
    let ps = probes(&ks);
    let got = scan_counts(&m, &t, ps.clone());
    for ((k, len), g) in ps.into_iter().zip(got) {
        assert_eq!(g, expect(&ks, k, len), "scan({k}, {len})");
    }
}

#[test]
fn scans_observe_inserts_and_removes() {
    let ks = keyspace();
    let m = Machine::new(Config::tiny());
    let sl = HybridSkipList::new(Arc::clone(&m), ks, 10, 4, 3, 1);
    sl.populate((0..ks.total_initial()).map(|i| (ks.initial_key(i), i)));
    let mut sim = m.simulation();
    sl.spawn_services(&mut sim);
    let sl2 = Arc::clone(&sl);
    sim.spawn("h0", ThreadKind::Host { core: 0 }, move |ctx| {
        // Scan a tail window small enough that the length cap (50) never
        // truncates, so net changes are visible in the count.
        let base = ks.initial_key(N - 20);
        let before = sl2.execute(ctx, Op::Scan(base, 50)).value;
        assert_eq!(before, 20);
        assert!(sl2.execute(ctx, Op::Insert(base + 1, 1)).ok);
        assert!(sl2.execute(ctx, Op::Insert(base + 2, 2)).ok);
        assert!(sl2.execute(ctx, Op::Remove(ks.initial_key(N - 19))).ok);
        let after = sl2.execute(ctx, Op::Scan(base, 50)).value;
        assert_eq!(after, before + 1, "net +2 inserts -1 remove inside the range");
    });
    sim.run();
    sl.check_invariants();
}

#[test]
fn ycsb_e_mix_generates_scans() {
    let spec = WorkloadSpec {
        seed: 5,
        threads: 1,
        ops_per_thread: 500,
        mix: Mix::ycsb_e(),
        read_dist: KeyDist::Zipfian,
        insert_dist: InsertDist::UniformGap,
    };
    let ops = &spec.generate(&keyspace())[0];
    let scans = ops.iter().filter(|o| matches!(o, Op::Scan(..))).count();
    assert!(scans > 400, "YCSB-E is 95% scans, got {scans}/500");
    for op in ops {
        if let Op::Scan(_, len) = op {
            assert!((1..=100).contains(len));
        }
    }
}

#[test]
fn ycsb_e_driver_run_on_hybrid_btree() {
    let ks = keyspace();
    let m = Machine::new(Config::tiny());
    let pairs: Vec<(Key, Value)> =
        (0..ks.total_initial()).map(|i| (ks.initial_key(i), i)).collect();
    let t = HybridBTree::with_budget(Arc::clone(&m), &pairs, 0.6, 2, 2 * 1024);
    let spec = hybrids::driver::RunSpec {
        workload: WorkloadSpec {
            seed: 6,
            threads: 2,
            ops_per_thread: 40,
            mix: Mix::ycsb_e(),
            read_dist: KeyDist::Uniform,
            insert_dist: InsertDist::UniformGap,
        },
        warmup_per_thread: 5,
        inflight: 2,
        app_footprint_lines: 0,
    };
    let r = hybrids::driver::run_index(&m, &t, &ks, &spec);
    assert_eq!(r.measured_ops, 80);
    assert!(r.succeeded_ops > 0);
    t.check_invariants();
}

#[test]
fn pipelined_btree_scans_interleaved_with_parked_inserts() {
    // Regression: a pipelined scan must not wedge on a host seqlock held by
    // a parked LOCK_PATH insert in another lane of the same host thread.
    let ks = keyspace();
    let m = Machine::new(Config::tiny());
    let pairs: Vec<(Key, Value)> =
        (0..ks.total_initial()).map(|i| (ks.initial_key(i), i)).collect();
    // Full leaves: every insert splits, maximizing LOCK_PATH traffic.
    let t = HybridBTree::with_budget(Arc::clone(&m), &pairs, 1.0, 4, 2 * 1024);
    let mut sim = m.simulation();
    t.spawn_services(&mut sim);
    for core in 0..2usize {
        let t = Arc::clone(&t);
        sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| {
            let mut ops: Vec<Op> = Vec::new();
            for i in 0..30u32 {
                ops.push(Op::Insert(ks.tail_key(core as u32, i), i));
                if i % 3 == 0 {
                    ops.push(Op::Scan(ks.initial_key(i * 11 % N), 30));
                }
            }
            let mut lanes: Vec<Option<_>> = (0..4).map(|_| None).collect();
            let mut next = 0;
            let mut done = 0;
            while done < ops.len() {
                for (lane, slot) in lanes.iter_mut().enumerate() {
                    match slot.take() {
                        None if next < ops.len() => {
                            match t.issue(ctx, lane, ops[next]) {
                                Issued::Done(_) => done += 1,
                                Issued::Pending(p) => *slot = Some(p),
                            }
                            next += 1;
                        }
                        None => {}
                        Some(mut p) => match t.poll(ctx, &mut p) {
                            PollOutcome::Done(_) => done += 1,
                            PollOutcome::Pending => *slot = Some(p),
                        },
                    }
                }
                ctx.idle(16);
            }
        });
    }
    sim.run();
    t.check_invariants();
    assert_eq!(t.collect().len(), ks.total_initial() as usize + 60);
}
