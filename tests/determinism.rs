//! Integration: whole-stack determinism.
//!
//! An entire experiment — machine, structure, workload, driver, statistics
//! — must be a pure function of its seeds: identical runs produce
//! bit-identical cycle counts, success counts, and memory-system counters.

use std::sync::Arc;

use hybrids::driver::{run_index, RunSpec};
use hybrids_repro::prelude::*;

fn fingerprint_hybrid_skiplist(seed: u64, inflight: usize) -> (u64, u64, u64, u64) {
    let ks = KeySpace::new(512, 2, 256);
    let m = Machine::new(Config::tiny());
    let sl = HybridSkipList::new(Arc::clone(&m), ks, 10, 4, seed, inflight.max(1));
    sl.populate((0..ks.total_initial()).map(|i| (ks.initial_key(i), i)));
    let spec = RunSpec {
        workload: WorkloadSpec {
            seed,
            threads: 4,
            ops_per_thread: 80,
            mix: Mix::read_insert_remove(60, 20, 20),
            read_dist: KeyDist::Zipfian,
            insert_dist: InsertDist::UniformGap,
        },
        warmup_per_thread: 20,
        inflight,
        app_footprint_lines: 2,
    };
    let r = run_index(&m, &sl, &ks, &spec);
    (r.cycles, r.succeeded_ops, r.stats.dram_reads(), r.stats.mmio_writes)
}

#[test]
fn blocking_runs_are_bit_identical() {
    assert_eq!(fingerprint_hybrid_skiplist(42, 1), fingerprint_hybrid_skiplist(42, 1));
}

#[test]
fn nonblocking_runs_are_bit_identical() {
    assert_eq!(fingerprint_hybrid_skiplist(42, 4), fingerprint_hybrid_skiplist(42, 4));
}

#[test]
fn different_seeds_differ() {
    assert_ne!(fingerprint_hybrid_skiplist(1, 1), fingerprint_hybrid_skiplist(2, 1));
}

#[test]
fn btree_runs_are_bit_identical() {
    let go = || {
        let ks = KeySpace::new(512, 2, 512);
        let m = Machine::new(Config::tiny());
        let pairs: Vec<(Key, Value)> =
            (0..ks.total_initial()).map(|i| (ks.initial_key(i), i)).collect();
        let t = HybridBTree::with_budget(Arc::clone(&m), &pairs, 0.8, 2, 4 * 1024);
        let spec = RunSpec {
            workload: WorkloadSpec {
                seed: 77,
                threads: 4,
                ops_per_thread: 60,
                mix: Mix::read_insert_remove(40, 40, 20),
                read_dist: KeyDist::Uniform,
                insert_dist: InsertDist::PartitionTail,
            },
            warmup_per_thread: 10,
            inflight: 2,
            app_footprint_lines: 0,
        };
        let r = run_index(&m, &t, &ks, &spec);
        t.check_invariants();
        (r.cycles, r.succeeded_ops, r.stats.dram_reads(), r.stats.l2.hits)
    };
    assert_eq!(go(), go());
}

#[test]
fn simulated_time_is_invariant_to_host_machine_load() {
    // The makespan is simulated cycles, not wall time: re-running under any
    // wall-clock conditions yields the same number. (Guards against
    // accidental reliance on real time anywhere in the stack.)
    let a = fingerprint_hybrid_skiplist(7, 2);
    std::thread::sleep(std::time::Duration::from_millis(50));
    let b = fingerprint_hybrid_skiplist(7, 2);
    assert_eq!(a, b);
}
