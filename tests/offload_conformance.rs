//! Integration: every structure behaves identically through the shared
//! offload runtime (`hybrids::offload`).
//!
//! One generic harness drives every registered `SimIndex` structure (see
//! `REGISTRY` — adding a structure means adding one entry, not a new
//! hand-rolled test) through both NMP-call modes (blocking `execute`,
//! 4-deep `issue`/`poll` pipelines) under full contention, and asserts the
//! *same* contract for each map-like structure:
//!
//! * race-free and region-policy clean (engine checkers),
//! * recorded point-op history linearizes against the initial contents,
//! * per-key presence balances against the final contents,
//! * runtime telemetry is conserved: every posted request was executed
//!   exactly once (`completed_total == posted_total` at quiescence), and
//!   the offloading structures actually posted (the host-only baseline
//!   must post nothing).
//!
//! The priority queue is not a map, so its registry entry swaps contract 2
//! for the pqueue-specific one: a combiner-log replay proving every pop
//! took its partition's minimum, plus per-key conservation of the popped /
//! inserted multiset against the final contents.
//!
//! Separate tests force the rare paths through the runtime — NMP-side
//! retries and the hybrid B+ tree's lock path — and pin down batching
//! observability plus bit-for-bit determinism of makespan *and* telemetry
//! (including both new structures through the driver).

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use hybrids_repro::prelude::*;
use nmp_sim::analysis::{HistEvent, HistOp, HistoryRecorder};
use nmp_sim::{OffloadStats, Policy};
use parking_lot::Mutex;
use workloads::Rng;

const THREADS: usize = 4;
const OPS_PER_THREAD: usize = 120;

fn keyspace() -> KeySpace {
    KeySpace::new(256, 2, 128)
}

/// Half the initial keys populated so inserts and removes both succeed.
fn half_initial(ks: &KeySpace) -> Vec<(Key, Value)> {
    (0..ks.total_initial()).filter(|i| i % 2 == 0).map(|i| (ks.initial_key(i), 5)).collect()
}

/// Contended mix over a small hot set. `scans` sprinkles range scans in to
/// exercise the pipelined multi-request scan clients; structures without a
/// key order (the hash map) take the all-point-op variant instead.
fn mixed_ops(seed: u64, ks: &KeySpace, hot_keys: u32, len: usize, scans: bool) -> Vec<Op> {
    let mut rng = Rng::new(seed);
    (0..len)
        .map(|_| {
            let k = ks.initial_key(rng.below(hot_keys as u64) as u32);
            match rng.below(8) {
                0 | 1 => Op::Insert(k, rng.next_u32() | 1),
                2 | 3 => Op::Remove(k),
                4 => Op::Update(k, rng.next_u32() | 1),
                5 if scans => Op::Scan(k, 4),
                _ => Op::Read(k),
            }
        })
        .collect()
}

/// Record a completed point operation; scans and extract-mins are outside
/// the per-key linearizability model and are skipped.
fn record(rec: &HistoryRecorder, thread: usize, op: Op, r: OpResult, inv: u64, resp: u64) {
    let (hop, key, value) = match op {
        Op::Read(k) => (HistOp::Read, k, r.value),
        Op::Insert(k, v) => (HistOp::Insert, k, v),
        Op::Remove(k) => (HistOp::Remove, k, 0),
        Op::Update(k, v) => (HistOp::Update, k, v),
        Op::Scan(..) | Op::ExtractMin => return,
    };
    rec.record(HistEvent { thread, op: hop, key, ok: r.ok, value, inv, resp });
}

/// Drive `ops` through `index` on one host thread at the given pipeline
/// depth, invoking `complete(op, result, invoke_time, response_time)` for
/// every finished operation.
fn drive<S: SimIndex>(
    ctx: &mut ThreadCtx,
    index: &Arc<S>,
    ops: &[Op],
    inflight: usize,
    mut complete: impl FnMut(Op, OpResult, u64, u64),
) {
    if inflight <= 1 {
        for &op in ops {
            let inv = ctx.now();
            let r = index.execute(ctx, op);
            let resp = ctx.now();
            complete(op, r, inv, resp);
        }
        return;
    }
    let mut lanes: Vec<Option<(Op, u64, S::Pending)>> = (0..inflight).map(|_| None).collect();
    let mut next = 0;
    let mut done = 0;
    while done < ops.len() {
        for (lane, slot) in lanes.iter_mut().enumerate() {
            match slot.take() {
                None if next < ops.len() => {
                    let op = ops[next];
                    next += 1;
                    let inv = ctx.now();
                    match index.issue(ctx, lane, op) {
                        Issued::Done(r) => {
                            let resp = ctx.now();
                            complete(op, r, inv, resp);
                            done += 1;
                        }
                        Issued::Pending(p) => *slot = Some((op, inv, p)),
                    }
                }
                None => {}
                Some((op, inv, mut p)) => match index.poll(ctx, &mut p) {
                    PollOutcome::Done(r) => {
                        let resp = ctx.now();
                        complete(op, r, inv, resp);
                        done += 1;
                    }
                    PollOutcome::Pending => *slot = Some((op, inv, p)),
                },
            }
        }
        ctx.idle(16);
    }
}

/// Drive `index` with the contended mixed workload at the given pipeline
/// depth, check the full conformance contract, and return the offload
/// telemetry for scenario-specific assertions.
#[allow(clippy::too_many_arguments)]
fn run_conformance<S: SimIndex>(
    machine: &Arc<Machine>,
    index: &Arc<S>,
    ks: KeySpace,
    initial: &[(Key, Value)],
    inflight: usize,
    seed: u64,
    expect_offload: bool,
    scans: bool,
    final_contents: impl FnOnce() -> BTreeMap<Key, Value>,
) -> OffloadStats {
    let analysis = machine.attach_analysis();
    // Spec-conformance mode: every observed access must match the effect
    // spec the structure registers in `spawn_services` below.
    analysis.enable_conformance();
    let recorder = Arc::new(HistoryRecorder::new());
    let tallies: Arc<Mutex<HashMap<Key, (i64, i64)>>> = Arc::new(Mutex::new(HashMap::new()));
    let mut sim = machine.simulation();
    index.spawn_services(&mut sim);
    for core in 0..THREADS {
        let index = Arc::clone(index);
        let tallies = Arc::clone(&tallies);
        let recorder = Arc::clone(&recorder);
        let ops = mixed_ops(seed + core as u64, &ks, 16, OPS_PER_THREAD, scans);
        sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| {
            drive(ctx, &index, &ops, inflight, |op, r, inv, resp| {
                record(&recorder, core, op, r, inv, resp);
                if r.ok {
                    let mut t = tallies.lock();
                    let e = t.entry(op.key()).or_insert((0, 0));
                    match op {
                        Op::Insert(..) => e.0 += 1,
                        Op::Remove(_) => e.1 += 1,
                        _ => {}
                    }
                }
            });
        });
    }
    sim.run();

    // Contract 1: no data races, no region-policy violations.
    analysis.report().assert_clean();

    // Contract 2: the point-op history linearizes.
    let initial_map: HashMap<Key, Value> = initial.iter().copied().collect();
    recorder.check_linearizable(|k| initial_map.get(&k).copied()).unwrap_or_else(|e| panic!("{e}"));

    // Contract 3: per-key presence balance against final contents.
    let present: HashSet<Key> = initial.iter().map(|&(k, _)| k).collect();
    let contents = final_contents();
    for (key, (io, ro)) in tallies.lock().iter() {
        let init = present.contains(key) as i64;
        assert_eq!(
            contents.contains_key(key) as i64,
            init + io - ro,
            "key {key} unbalanced (initial {init}, +{io}, -{ro})"
        );
    }

    // Contract 4: telemetry conservation — every posted request was
    // executed exactly once by a combiner, and offloading structures
    // actually went through the runtime.
    let offload = machine.mem().snapshot().offload;
    assert_eq!(
        offload.completed_total(),
        offload.posted_total(),
        "posted requests must all be executed at quiescence"
    );
    if expect_offload {
        assert!(offload.posted_total() > 0, "offloading structure posted nothing");
    } else {
        assert_eq!(offload.posted_total(), 0, "host-only structure must not post");
    }
    offload
}

/// Pqueue variant of the conformance contract. The queue is not a map, so
/// contract 2 becomes: (a) the combiner event log replays exactly against
/// a per-partition model (every successful pop took its partition's
/// minimum, every failed extract saw genuinely empty partitions), and
/// (b) `initial + successful inserts − popped keys` balances against the
/// final contents per key. Contracts 1 (analysis clean) and 4 (telemetry
/// conservation) are unchanged.
fn pqueue_conformance(inflight: usize, policy: Policy) {
    let ks = keyspace();
    let m = Machine::new(Config::tiny().with_policy(policy));
    let pq = HybridPqueue::with_exec_log(Arc::clone(&m), ks, 8, 5, inflight);
    let initial = half_initial(&ks);
    pq.populate(&initial);
    let analysis = m.attach_analysis();
    analysis.enable_conformance();
    let inserted: Arc<Mutex<Vec<Key>>> = Arc::new(Mutex::new(Vec::new()));
    let popped: Arc<Mutex<Vec<Key>>> = Arc::new(Mutex::new(Vec::new()));
    let mut sim = m.simulation();
    pq.spawn_services(&mut sim);
    for core in 0..THREADS {
        let pq = Arc::clone(&pq);
        let inserted = Arc::clone(&inserted);
        let popped = Arc::clone(&popped);
        let mut rng = Rng::new(3600 + core as u64);
        let ops: Vec<Op> = (0..OPS_PER_THREAD)
            .map(|_| {
                if rng.below(2) == 0 {
                    Op::ExtractMin
                } else {
                    let base = ks.initial_key(rng.below(ks.total_initial() as u64) as u32);
                    Op::Insert(base + 1 + rng.below(6) as u32, rng.next_u32() | 1)
                }
            })
            .collect();
        sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| {
            drive(ctx, &pq, &ops, inflight, |op, r, _inv, _resp| {
                if !r.ok {
                    return;
                }
                match op {
                    Op::Insert(k, _) => inserted.lock().push(k),
                    Op::ExtractMin => popped.lock().push(r.value),
                    _ => unreachable!(),
                }
            });
        });
    }
    sim.run();

    // Contract 1: no data races, no region-policy violations.
    analysis.report().assert_clean();

    // Contract 2 (pqueue form): structural invariants + pop-order replay.
    pq.check_invariants();
    pq.verify_extract_order(&initial);

    // Per-key balance of inserts/pops against the final contents.
    let mut balance: HashMap<Key, i64> = HashMap::new();
    for &(k, _) in &initial {
        *balance.entry(k).or_default() += 1;
    }
    for &k in inserted.lock().iter() {
        *balance.entry(k).or_default() += 1;
    }
    for &k in popped.lock().iter() {
        *balance.entry(k).or_default() -= 1;
    }
    let final_keys: HashSet<Key> = pq.collect().iter().map(|&(k, _)| k).collect();
    for (k, c) in balance {
        assert!((0..=1).contains(&c), "key {k} over-inserted or over-popped ({c})");
        assert_eq!(final_keys.contains(&k), c == 1, "key {k} unbalanced");
    }

    // Contract 4: telemetry conservation.
    let offload = m.mem().snapshot().offload;
    assert_eq!(offload.completed_total(), offload.posted_total());
    assert!(offload.posted_total() > 0, "pqueue must route through the runtime");
}

/// One registry entry per structure; the generic tests below iterate this
/// slice (crossed with both offload policies), so adding a structure to
/// the harness is one new line here.
struct Entry {
    name: &'static str,
    run: fn(usize, Policy),
}

const REGISTRY: &[Entry] = &[
    Entry {
        name: "nmp-skiplist",
        run: |inflight, policy| {
            let ks = keyspace();
            let m = Machine::new(Config::tiny().with_policy(policy));
            let sl = NmpSkipList::new(Arc::clone(&m), ks, 8, 3, inflight);
            let initial = half_initial(&ks);
            sl.populate(initial.clone());
            let sl2 = Arc::clone(&sl);
            run_conformance(&m, &sl, ks, &initial, inflight, 3100, true, true, move || {
                sl2.check_invariants();
                sl2.collect().into_iter().collect()
            });
        },
    },
    Entry {
        name: "hybrid-skiplist",
        run: |inflight, policy| {
            let ks = keyspace();
            let m = Machine::new(Config::tiny().with_policy(policy));
            let sl = HybridSkipList::new(Arc::clone(&m), ks, 10, 4, 3, inflight);
            let initial = half_initial(&ks);
            sl.populate(initial.clone());
            let sl2 = Arc::clone(&sl);
            run_conformance(&m, &sl, ks, &initial, inflight, 3200, true, true, move || {
                sl2.check_invariants();
                sl2.collect().into_iter().collect()
            });
        },
    },
    Entry {
        name: "hybrid-btree",
        run: |inflight, policy| {
            let ks = keyspace();
            let m = Machine::new(Config::tiny().with_policy(policy));
            let initial = half_initial(&ks);
            let t =
                HybridBTree::with_budget(Arc::clone(&m), &initial, 0.7, inflight.max(2), 2 * 1024);
            let t2 = Arc::clone(&t);
            run_conformance(&m, &t, ks, &initial, inflight, 3300, true, true, move || {
                t2.check_invariants();
                t2.collect().into_iter().collect()
            });
        },
    },
    Entry {
        name: "host-btree",
        run: |inflight, policy| {
            let ks = keyspace();
            let m = Machine::new(Config::tiny().with_policy(policy));
            let initial = half_initial(&ks);
            let t = HostBTree::new(Arc::clone(&m), &initial, 0.7);
            let t2 = Arc::clone(&t);
            run_conformance(&m, &t, ks, &initial, inflight, 3400, false, true, move || {
                t2.check_invariants();
                t2.collect().into_iter().collect()
            });
        },
    },
    Entry {
        name: "hybrid-hashmap",
        run: |inflight, policy| {
            let ks = keyspace();
            let m = Machine::new(Config::tiny().with_policy(policy));
            let hm = HybridHashMap::new(Arc::clone(&m), 64, 99, inflight);
            let initial = half_initial(&ks);
            hm.populate(initial.clone());
            let hm2 = Arc::clone(&hm);
            // scans=false: a hash map has no key order to scan.
            run_conformance(&m, &hm, ks, &initial, inflight, 3500, true, false, move || {
                hm2.check_invariants();
                hm2.collect().into_iter().collect()
            });
        },
    },
    Entry { name: "hybrid-pqueue", run: pqueue_conformance },
];

#[test]
fn all_structures_conform_blocking() {
    for e in REGISTRY {
        eprintln!("conformance[blocking]: {}", e.name);
        (e.run)(1, Policy::Fixed);
    }
}

#[test]
fn all_structures_conform_pipelined() {
    for e in REGISTRY {
        eprintln!("conformance[pipelined x4]: {}", e.name);
        (e.run)(4, Policy::Fixed);
    }
}

/// Full conformance contract under the self-tuning policy: coalescing,
/// adaptive lane depth, and tuned idle cycles must not cost linearizability
/// or telemetry conservation for any structure in blocking mode.
#[test]
fn all_structures_conform_blocking_adaptive() {
    for e in REGISTRY {
        eprintln!("conformance[blocking, adaptive]: {}", e.name);
        (e.run)(1, Policy::Adaptive);
    }
}

/// Pipelined conformance under the self-tuning policy — the mode where
/// batches actually form, so sorted passes, coalesced runs, and occupancy
/// feedback are all live.
#[test]
fn all_structures_conform_pipelined_adaptive() {
    for e in REGISTRY {
        eprintln!("conformance[pipelined x4, adaptive]: {}", e.name);
        (e.run)(4, Policy::Adaptive);
    }
}

/// Split-heavy inserts racing removes in the same key range: parked
/// inserts force the NMP side to answer RETRY, and splits reaching the
/// host levels force the lock path. Both must be visible in telemetry and
/// leave the tree consistent.
fn forced_retries_and_lock_path(policy: Policy) {
    let m = Machine::new(Config::tiny().with_policy(policy));
    let pairs: Vec<(Key, Value)> = (1..=500u32).map(|k| (k * 8, k)).collect();
    let t = HybridBTree::with_budget(Arc::clone(&m), &pairs, 1.0, 4, 4 * 1024);
    let analysis = m.attach_analysis();
    analysis.enable_conformance();
    let mut sim = m.simulation();
    t.spawn_services(&mut sim);
    for core in 0..4usize {
        let t = Arc::clone(&t);
        sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| {
            for i in 0..40u32 {
                if core % 2 == 0 {
                    // Dense fresh keys into full leaves: every insert splits.
                    let key = 4001 + core as u32 * 500 + i;
                    assert!(t.execute(ctx, Op::Insert(key, i)).ok);
                } else {
                    // Removes in the same range race the parked inserts.
                    let key = ((i * 13 + core as u32) % 500 + 1) * 8;
                    let _ = t.execute(ctx, Op::Remove(key));
                }
            }
        });
    }
    sim.run();
    analysis.report().assert_clean();
    t.check_invariants();
    let offload = m.mem().snapshot().offload;
    assert_eq!(offload.completed_total(), offload.posted_total());
    assert!(offload.lock_path_total() > 0, "fill-1.0 splits must reach the host lock path");
    assert!(offload.retries_total() > 0, "removes racing parked inserts must retry");
}

#[test]
fn forced_retries_and_lock_path_are_counted() {
    forced_retries_and_lock_path(Policy::Fixed);
}

/// The same forced rare paths with the adaptive policy live: retries and
/// lock-path completions must survive sorted combining passes (retry
/// responses are never coalesced or replicated) and still be counted.
#[test]
fn forced_retries_and_lock_path_are_counted_adaptive() {
    forced_retries_and_lock_path(Policy::Adaptive);
}

/// Forced-coalescing interaction case: four pipelined host threads hammer
/// one hot key with reads while a sprinkle of same-key inserts/removes
/// keeps flipping its presence. Under `Policy::Adaptive` the combiner's
/// sorted passes must (a) actually coalesce identical hot reads, (b) keep
/// the recorded history linearizable even though most responses are
/// replicas of a lead descent racing the mutations, and (c) conserve
/// telemetry (every posted request answered exactly once — coalesced
/// followers included).
#[test]
fn adaptive_coalesces_hot_reads_and_stays_linearizable() {
    let ks = keyspace();
    let m = Machine::new(Config::tiny().with_policy(Policy::Adaptive));
    let hm = HybridHashMap::new(Arc::clone(&m), 64, 99, 4);
    let initial = half_initial(&ks);
    hm.populate(initial.clone());
    let analysis = m.attach_analysis();
    analysis.enable_conformance();
    let recorder = Arc::new(HistoryRecorder::new());
    let hot = ks.initial_key(0);
    let mut sim = m.simulation();
    hm.spawn_services(&mut sim);
    for core in 0..THREADS {
        let hm = Arc::clone(&hm);
        let recorder = Arc::clone(&recorder);
        let mut rng = Rng::new(8800 + core as u64);
        // 7/8 hot-key reads, 1/8 hot-key insert/remove churn: combining
        // passes are dominated by identical requests.
        let ops: Vec<Op> = (0..OPS_PER_THREAD)
            .map(|_| match rng.below(16) {
                0 => Op::Insert(hot, rng.next_u32() | 1),
                1 => Op::Remove(hot),
                _ => Op::Read(hot),
            })
            .collect();
        sim.spawn(format!("h{core}"), ThreadKind::Host { core }, move |ctx| {
            drive(ctx, &hm, &ops, 4, |op, r, inv, resp| {
                record(&recorder, core, op, r, inv, resp);
            });
        });
    }
    sim.run();
    analysis.report().assert_clean();
    hm.check_invariants();
    let initial_map: HashMap<Key, Value> = initial.iter().copied().collect();
    recorder.check_linearizable(|k| initial_map.get(&k).copied()).unwrap_or_else(|e| panic!("{e}"));
    let offload = m.mem().snapshot().offload;
    assert_eq!(offload.completed_total(), offload.posted_total());
    assert!(
        offload.coalesced_total() > 0,
        "identical hot reads from 4x4 lanes must coalesce: {offload:?}"
    );
}

/// Under a pipelined YCSB-C run the combiner must actually batch: some
/// scan passes pick up more than one published request.
#[test]
fn pipelined_run_batches_multiple_requests_per_pass() {
    let m = Machine::new(Config::tiny());
    let ks = keyspace();
    let sl = HybridSkipList::new(Arc::clone(&m), ks, 10, 4, 7, 4);
    sl.populate((0..ks.total_initial()).map(|i| (ks.initial_key(i), i)));
    let spec = RunSpec::new(
        WorkloadSpec {
            seed: 42,
            threads: 4,
            ops_per_thread: 80,
            mix: Mix::ycsb_c(),
            read_dist: KeyDist::Uniform,
            insert_dist: InsertDist::UniformGap,
        },
        20,
        4,
    );
    let r = run_index(&m, &sl, &ks, &spec);
    assert_eq!(r.measured_ops, 320);
    assert!(
        r.stats.offload.passes_with(2) > 0,
        "pipelined YCSB-C should combine >1 request in some passes: {:?}",
        r.stats.offload
    );
    assert!(r.offload_mean_batch > 0.0);
    assert!(r.wall_ms > 0.0);
    assert!(r.sim_cycles_per_sec > 0.0);
}

/// Identical seeds must give identical makespans *and* identical offload
/// telemetry across consecutive runs — the telemetry layer itself must
/// not perturb simulated time.
#[test]
fn telemetry_and_makespan_are_deterministic() {
    let go = || {
        let m = Machine::new(Config::tiny());
        let ks = keyspace();
        let sl = HybridSkipList::new(Arc::clone(&m), ks, 10, 4, 11, 4);
        sl.populate((0..ks.total_initial()).map(|i| (ks.initial_key(i), i)));
        let spec = RunSpec::new(
            WorkloadSpec {
                seed: 7,
                threads: 3,
                ops_per_thread: 60,
                mix: Mix::read_insert_remove(60, 20, 20),
                read_dist: KeyDist::Uniform,
                insert_dist: InsertDist::UniformGap,
            },
            10,
            4,
        );
        let r = run_index(&m, &sl, &ks, &spec);
        (r.cycles, r.succeeded_ops, r.stats.offload.clone())
    };
    let (a, b) = (go(), go());
    assert_eq!(a.0, b.0, "makespan must be bit-for-bit deterministic");
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2, "offload telemetry must be deterministic");
}

/// Same-seed driver runs over both *new* structures must reproduce
/// makespan, op counts, and every offload counter bit-for-bit.
#[test]
fn new_structures_telemetry_deterministic() {
    let ks = keyspace();
    let hash_run = || {
        let m = Machine::new(Config::tiny());
        let hm = HybridHashMap::new(Arc::clone(&m), 64, 17, 4);
        hm.populate(half_initial(&ks));
        let spec = RunSpec::new(WorkloadSpec::hashmap_mixed(13, 3, 60, KeyDist::Uniform), 10, 4);
        let r = run_index(&m, &hm, &ks, &spec);
        (r.cycles, r.succeeded_ops, r.stats.offload.clone())
    };
    let pq_run = || {
        let m = Machine::new(Config::tiny());
        let pq = HybridPqueue::new(Arc::clone(&m), ks, 8, 5, 4);
        pq.populate(&half_initial(&ks));
        let spec = RunSpec::new(WorkloadSpec::pqueue(29, 3, 60, 50), 10, 4);
        let r = run_index(&m, &pq, &ks, &spec);
        (r.cycles, r.succeeded_ops, r.stats.offload.clone())
    };
    let (a, b) = (hash_run(), hash_run());
    assert_eq!(a, b, "hash map runs must be bit-for-bit deterministic");
    assert!(a.2.posted_total() > 0, "hash map must offload");
    let (c, d) = (pq_run(), pq_run());
    assert_eq!(c, d, "pqueue runs must be bit-for-bit deterministic");
    assert!(c.2.posted_total() > 0, "pqueue must offload");
}
